//! Criterion benchmarks of full training steps: FP32 vs posit-quantized
//! (the simulation overhead of the paper's method), plus posit inference.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use posit_data::SyntheticCifar;
use posit_nn::{Layer, Sgd, SoftmaxCrossEntropy};
use posit_tensor::rng::Prng;
use posit_train::{Phase, QuantBuilder, QuantSpec, RunOptions, TrainConfig, Trainer};
use std::hint::black_box;

fn bench_training_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_step");
    g.sample_size(10);
    let gen = SyntheticCifar::new(16, 1);
    let data = gen.train(32, 2);
    let x = data.features().clone();
    let t: Vec<usize> = data.labels().to_vec();
    g.throughput(Throughput::Elements(32));

    // FP32 baseline step.
    {
        let mut rng = Prng::seed(1);
        let mut b = posit_models::PlainBuilder;
        let mut net = posit_models::resnet_scaled(&mut b, 8, 10, &mut rng);
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.05).momentum(0.9);
        g.bench_function("fp32", |bch| {
            bch.iter(|| {
                let y = net.forward(black_box(&x), true);
                let (l, grad) = loss.forward(&y, &t);
                opt.zero_grad(&mut net.params_mut());
                net.backward(&grad);
                opt.step(&mut net.params_mut());
                l
            })
        });
    }

    // Posit-quantized step (paper CIFAR recipe).
    {
        let mut rng = Prng::seed(1);
        let mut qb = QuantBuilder::new(QuantSpec::cifar_paper());
        let control = qb.control();
        let mut net = posit_models::resnet_scaled(&mut qb, 8, 10, &mut rng);
        control.set_phase(Phase::Posit);
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.05).momentum(0.9);
        g.bench_function("posit_cifar_recipe", |bch| {
            bch.iter(|| {
                let y = net.forward(black_box(&x), true);
                let (l, grad) = loss.forward(&y, &t);
                opt.zero_grad(&mut net.params_mut());
                net.backward(&grad);
                opt.step(&mut net.params_mut());
                l
            })
        });
    }
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    g.sample_size(10);
    let gen = SyntheticCifar::new(16, 1);
    let train = gen.train(64, 2);
    let test = gen.test(64, 2);
    let config = TrainConfig::cifar_scaled(8, 1).with_seed(1);
    let mut trainer = Trainer::resnet(&config);
    let _ = trainer
        .run(RunOptions::new(&train, &test, &config))
        .unwrap();
    g.throughput(Throughput::Elements(64));
    g.bench_function("fp32_eval_64", |bch| {
        bch.iter(|| trainer.evaluate(black_box(&test), &config))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10);
    targets = bench_training_step, bench_inference
}
criterion_main!(benches);
