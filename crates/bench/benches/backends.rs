//! Compute-backend A/B: `f32` vs `posit-emulated` vs `posit-quire` GEMMs at
//! the layer shapes of the LeNet and MLP reference models.
//!
//! Two extra variants isolate where the quire path's time goes:
//! `posit-quire` includes the per-call operand unpack (what the `nn` layers
//! pay), `posit-quire-preplaned` reuses decoded planes across iterations
//! (what a weight-stationary kernel pays — the decode-once upside).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use posit::{PositFormat, Rounding};
use posit_models::{lenet_gemm_shapes, mlp_gemm_shapes, GemmShape};
use posit_tensor::rng::Prng;
use posit_tensor::{Backend, PositGemm};
use std::hint::black_box;

fn bench_shapes() -> Vec<GemmShape> {
    let mut shapes = lenet_gemm_shapes(28, 32, 10);
    shapes.extend(mlp_gemm_shapes(32, &[256, 128, 10]));
    shapes
}

fn bench_backends(c: &mut Criterion) {
    let fmt = PositFormat::of(8, 1);
    let rounding = Rounding::NearestEven;
    let mut rng = Prng::seed(1);
    for shape in bench_shapes() {
        let (m, k, n) = (shape.m, shape.k, shape.n);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut g = c.benchmark_group(shape.label.clone());
        g.throughput(Throughput::Elements(shape.macs() as u64));
        for backend in [
            Backend::F32,
            Backend::PositEmulated { fmt, rounding },
            Backend::PositQuire { fmt, rounding },
        ] {
            g.bench_function(backend.name(), |bch| {
                bch.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    backend.gemm(m, k, n, black_box(&a), black_box(&b), &mut out);
                    out
                })
            });
        }
        // Decode-once amortized: planes built outside the timed loop.
        let kernel = PositGemm::new(fmt, rounding);
        let pa = kernel.encode_plane(&a);
        let pb = kernel.encode_plane(&b);
        g.bench_function("posit-quire-preplaned", |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                kernel.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                out
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10);
    targets = bench_backends
}
criterion_main!(benches);
