//! Compute-backend A/B: `f32` vs `posit-emulated` vs `posit-quire` GEMMs at
//! the layer shapes of the LeNet and MLP reference models.
//!
//! Extra variants isolate where the quire path's time goes:
//!
//! * `posit-quire` includes the per-call operand unpack (what the `nn`
//!   layers pay on a cache miss);
//! * `posit-quire-preplaned` reuses decoded planes across iterations (what
//!   a weight-stationary kernel pays — the decode-once upside, and what
//!   the layers' `OperandCache` achieves for weights);
//! * `posit-quire-widequire` is preplaned with the narrow i128 fast path
//!   disabled — the gap to `preplaned` is the narrow-accumulator win;
//! * `posit-quire-serial` is preplaned inside a `serial_scope` — the gap
//!   to `preplaned` is the worker-pool win (zero on single-core boxes,
//!   where the pool never dispatches).
//!
//! A LUT on/off row is not feasible at kernel level — the decode tables
//! are keyed by format, not by a switch — so the `plane_decode` group
//! approximates it by timing the plane unpack for a LUT-served 8-bit
//! format against the bit-twiddled 16-bit path at equal element counts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use posit::{PositFormat, Rounding};
use posit_models::{lenet_gemm_shapes, mlp_gemm_shapes, GemmShape};
use posit_tensor::rng::Prng;
use posit_tensor::{serial_scope, Backend, KStripMode, PositGemm, PositPlane};
use std::hint::black_box;

fn bench_shapes() -> Vec<GemmShape> {
    let mut shapes = lenet_gemm_shapes(28, 32, 10);
    shapes.extend(mlp_gemm_shapes(32, &[256, 128, 10]));
    shapes
}

fn bench_backends(c: &mut Criterion) {
    let fmt = PositFormat::of(8, 1);
    let rounding = Rounding::NearestEven;
    let mut rng = Prng::seed(1);
    for shape in bench_shapes() {
        let (m, k, n) = (shape.m, shape.k, shape.n);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut g = c.benchmark_group(shape.label.clone());
        g.throughput(Throughput::Elements(shape.macs() as u64));
        for backend in [
            Backend::F32,
            Backend::PositEmulated { fmt, rounding },
            Backend::PositQuire { fmt, rounding },
        ] {
            g.bench_function(backend.name(), |bch| {
                bch.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    backend.gemm(m, k, n, black_box(&a), black_box(&b), &mut out);
                    out
                })
            });
        }
        // Decode-once amortized: planes built outside the timed loop.
        let kernel = PositGemm::new(fmt, rounding);
        let pa = kernel.encode_plane(&a);
        let pb = kernel.encode_plane(&b);
        g.bench_function("posit-quire-preplaned", |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                kernel.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                out
            })
        });
        // K-strip batched micro-kernel pinned on: preplaned with
        // `KStripMode::Force`, so the row tracks the batched kernel even
        // at depths where the Auto heuristic would stay scalar
        // (bit-identical results either way).
        let swar = kernel.kstrip(KStripMode::Force);
        g.bench_function("posit-quire-swar", |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                swar.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                out
            })
        });
        // Narrow accumulator off: the same preplaned GEMM forced onto the
        // heap-allocated wide quire (bit-identical results, slower path).
        let wide = kernel.wide_accumulator(true);
        g.bench_function("posit-quire-widequire", |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                wide.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                out
            })
        });
        // Worker pool off: preplaned, dispatch disabled on this thread.
        g.bench_function("posit-quire-serial", |bch| {
            bch.iter(|| {
                serial_scope(|| {
                    let mut out = vec![0.0f32; m * n];
                    kernel.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                    out
                })
            })
        });
        g.finish();
    }
}

/// Sharded vs serial optimizer-step time under the exact data-parallel
/// protocol (`dp-step.<model>/serial` vs `dp-step.<model>/sharded-x4`).
/// The quire all-reduce makes the results bit-identical by construction;
/// this row tracks what the lane split costs (or saves) in wall time so
/// `BENCH_bench-smoke.json` carries the sharded-vs-serial trajectory.
fn bench_dp_step(c: &mut Criterion) {
    use posit_nn::{Layer, Sgd, SoftmaxCrossEntropy};
    use posit_tensor::Tensor;
    use posit_train::{ComputeBackend, Phase, QuantBuilder, QuantSpec};

    let batch = 32;
    let loss = SoftmaxCrossEntropy::new();
    for model in ["lenet", "mlp"] {
        let mut rng = Prng::seed(7);
        let spec = QuantSpec::cifar_paper().with_backend(ComputeBackend::PositQuire);
        let mut qb = QuantBuilder::new(spec);
        let control = qb.control();
        let (mut net, x) = match model {
            "lenet" => (
                posit_models::lenet(&mut qb, 3, 16, 10, &mut rng),
                Tensor::rand_normal(&[batch, 3, 16, 16], 0.0, 1.0, &mut rng),
            ),
            _ => (
                posit_models::mlp(&mut qb, &[64, 128, 10], &mut rng),
                Tensor::rand_normal(&[batch, 64], 0.0, 1.0, &mut rng),
            ),
        };
        control.set_phase(Phase::Posit);
        let t: Vec<usize> = (0..batch).map(|i| i % 10).collect();
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let mut g = c.benchmark_group(format!("dp-step.{model}"));
        g.sample_size(10);
        for (label, lanes) in [("serial", 1usize), ("sharded-x4", 4)] {
            g.bench_function(label, |bch| {
                bch.iter(|| {
                    opt.zero_grad(&mut net.params_mut());
                    net.begin_grad_batch(batch);
                    let (base, extra) = (batch / lanes, batch % lanes);
                    let mut start = 0;
                    for s in 0..lanes {
                        let rows = base + usize::from(s < extra);
                        let end = start + rows;
                        net.begin_grad_shard();
                        let y = net.forward(&x.slice_rows(start, end), true).into_f32();
                        let (_, grad) = loss.forward_shard(&y, &t[start..end], batch);
                        net.backward(&grad);
                        start = end;
                    }
                    net.end_grad_batch();
                    opt.step(&mut net.params_mut());
                })
            });
        }
        g.finish();
    }
}

/// Operand-plane unpack throughput, one row per decode route:
///
/// * `lut/posit(8,1)` — the SWAR lane-group gather through the 256-entry
///   table (the `from_bits` fast path for `n ≤ 8`);
/// * `lut2/posit(16,1)` — the two-level LUT route (the `from_bits` fast
///   path for `8 < n ≤ 16`);
/// * `twiddle/posit(16,1)` — the bit-twiddled scalar oracle
///   (`from_bits_scalar`) on the same data, the before/after baseline the
///   two-level route is measured against.
fn bench_plane_decode(c: &mut Criterion) {
    let elems = 1 << 14;
    let mut g = c.benchmark_group("plane_decode");
    g.throughput(Throughput::Elements(elems as u64));
    let random_bits = |fmt: PositFormat| -> Vec<u64> {
        let mut state = 0x5EED_BA5E_u64;
        (0..elems)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) & fmt.mask()
            })
            .collect()
    };
    let p8 = PositFormat::of(8, 1);
    let bits8 = random_bits(p8);
    g.bench_function("lut/posit(8,1)", |bch| {
        bch.iter(|| PositPlane::from_bits(p8, black_box(&bits8)))
    });
    let p16 = PositFormat::of(16, 1);
    let bits16 = random_bits(p16);
    g.bench_function("lut2/posit(16,1)", |bch| {
        bch.iter(|| PositPlane::from_bits(p16, black_box(&bits16)))
    });
    g.bench_function("twiddle/posit(16,1)", |bch| {
        bch.iter(|| PositPlane::from_bits_scalar(p16, black_box(&bits16)))
    });
    g.finish();
}

/// Telemetry-overhead A/B: the same preplaned quire GEMM at an MLP layer
/// shape with `posit_obs` recording off (`mlp.obs-off/posit-quire`) and
/// on (`mlp.obs-on/posit-quire`). Both rows match the bench-smoke
/// regression gate's `mlp.*/posit-quire` pattern, so the disabled cost
/// (one relaxed atomic load per kernel call) and the enabled cost (a few
/// sharded counter adds per call) are both held inside the 1.5x envelope.
fn bench_obs_overhead(c: &mut Criterion) {
    let fmt = PositFormat::of(8, 1);
    let rounding = Rounding::NearestEven;
    let mut rng = Prng::seed(9);
    let (m, k, n) = (32usize, 256, 128);
    let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let kernel = PositGemm::new(fmt, rounding);
    let pa = kernel.encode_plane(&a);
    let pb = kernel.encode_plane(&b);
    let was = posit_obs::enabled();
    for (label, on) in [("mlp.obs-off", false), ("mlp.obs-on", true)] {
        let mut g = c.benchmark_group(label);
        g.throughput(Throughput::Elements((m * k * n) as u64));
        posit_obs::set_enabled(on);
        g.bench_function("posit-quire", |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                kernel.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                out
            })
        });
        posit_obs::set_enabled(was);
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10);
    targets = bench_backends, bench_dp_step, bench_plane_decode, bench_obs_overhead
}
criterion_main!(benches);
