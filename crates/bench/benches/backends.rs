//! Compute-backend A/B: `f32` vs `posit-emulated` vs `posit-quire` GEMMs at
//! the layer shapes of the LeNet and MLP reference models.
//!
//! Extra variants isolate where the quire path's time goes:
//!
//! * `posit-quire` includes the per-call operand unpack (what the `nn`
//!   layers pay on a cache miss);
//! * `posit-quire-preplaned` reuses decoded planes across iterations (what
//!   a weight-stationary kernel pays — the decode-once upside, and what
//!   the layers' `OperandCache` achieves for weights);
//! * `posit-quire-widequire` is preplaned with the narrow i128 fast path
//!   disabled — the gap to `preplaned` is the narrow-accumulator win;
//! * `posit-quire-serial` is preplaned inside a `serial_scope` — the gap
//!   to `preplaned` is the worker-pool win (zero on single-core boxes,
//!   where the pool never dispatches).
//!
//! A LUT on/off row is not feasible at kernel level — the decode tables
//! are keyed by format, not by a switch — so the `plane_decode` group
//! approximates it by timing the plane unpack for a LUT-served 8-bit
//! format against the bit-twiddled 16-bit path at equal element counts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use posit::{PositFormat, Rounding};
use posit_models::{lenet_gemm_shapes, mlp_gemm_shapes, GemmShape};
use posit_tensor::rng::Prng;
use posit_tensor::{serial_scope, Backend, PositGemm, PositPlane};
use std::hint::black_box;

fn bench_shapes() -> Vec<GemmShape> {
    let mut shapes = lenet_gemm_shapes(28, 32, 10);
    shapes.extend(mlp_gemm_shapes(32, &[256, 128, 10]));
    shapes
}

fn bench_backends(c: &mut Criterion) {
    let fmt = PositFormat::of(8, 1);
    let rounding = Rounding::NearestEven;
    let mut rng = Prng::seed(1);
    for shape in bench_shapes() {
        let (m, k, n) = (shape.m, shape.k, shape.n);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut g = c.benchmark_group(shape.label.clone());
        g.throughput(Throughput::Elements(shape.macs() as u64));
        for backend in [
            Backend::F32,
            Backend::PositEmulated { fmt, rounding },
            Backend::PositQuire { fmt, rounding },
        ] {
            g.bench_function(backend.name(), |bch| {
                bch.iter(|| {
                    let mut out = vec![0.0f32; m * n];
                    backend.gemm(m, k, n, black_box(&a), black_box(&b), &mut out);
                    out
                })
            });
        }
        // Decode-once amortized: planes built outside the timed loop.
        let kernel = PositGemm::new(fmt, rounding);
        let pa = kernel.encode_plane(&a);
        let pb = kernel.encode_plane(&b);
        g.bench_function("posit-quire-preplaned", |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                kernel.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                out
            })
        });
        // Narrow accumulator off: the same preplaned GEMM forced onto the
        // heap-allocated wide quire (bit-identical results, slower path).
        let wide = kernel.wide_accumulator(true);
        g.bench_function("posit-quire-widequire", |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                wide.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                out
            })
        });
        // Worker pool off: preplaned, dispatch disabled on this thread.
        g.bench_function("posit-quire-serial", |bch| {
            bch.iter(|| {
                serial_scope(|| {
                    let mut out = vec![0.0f32; m * n];
                    kernel.gemm(m, k, n, black_box(&pa), black_box(&pb), &mut out);
                    out
                })
            })
        });
        g.finish();
    }
}

/// Operand-plane unpack throughput: the 8-bit row decodes through the
/// 256-entry LUT, the 16-bit row through the direct bit-twiddled decoder —
/// the closest feasible LUT on/off comparison (per element, at identical
/// counts).
fn bench_plane_decode(c: &mut Criterion) {
    let elems = 1 << 14;
    let mut g = c.benchmark_group("plane_decode");
    g.throughput(Throughput::Elements(elems as u64));
    for (label, fmt) in [
        ("lut/posit(8,1)", PositFormat::of(8, 1)),
        ("twiddle/posit(16,1)", PositFormat::of(16, 1)),
    ] {
        let mut state = 0x5EED_BA5E_u64;
        let bits: Vec<u64> = (0..elems)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) & fmt.mask()
            })
            .collect();
        g.bench_function(label, |bch| {
            bch.iter(|| PositPlane::from_bits(fmt, black_box(&bits)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10);
    targets = bench_backends, bench_plane_decode
}
criterion_main!(benches);
