//! Criterion benchmarks of the gate-level hardware models (Figs. 4-6):
//! decode/encode/MAC functional throughput for both circuit generations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use posit::PositFormat;
use posit_hw::decoder::{DecoderOptimized, DecoderOriginal, PositDecoder};
use posit_hw::encoder::{EncoderOptimized, PositEncoder};
use posit_hw::mac::{Generation, PositMac};
use std::hint::black_box;

fn codes(fmt: &PositFormat, n: usize) -> Vec<u64> {
    let mut state = 0xFEED_FACE_CAFE_BEEFu64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state & fmt.mask()
        })
        .collect()
}

fn bench_decoders(c: &mut Criterion) {
    let mut g = c.benchmark_group("hw_decoder");
    for (n, es) in [(8u32, 0u32), (16, 1), (32, 3)] {
        let fmt = PositFormat::of(n, es);
        let input = codes(&fmt, 1024);
        g.throughput(Throughput::Elements(input.len() as u64));
        let orig = DecoderOriginal::new(fmt);
        let opt = DecoderOptimized::new(fmt);
        g.bench_with_input(BenchmarkId::new("original", fmt), &input, |b, input| {
            b.iter(|| {
                let mut acc = 0i64;
                for &code in input {
                    acc ^= orig.decode(black_box(code)).scale as i64;
                }
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("optimized", fmt), &input, |b, input| {
            b.iter(|| {
                let mut acc = 0i64;
                for &code in input {
                    acc ^= opt.decode(black_box(code)).scale as i64;
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_encoder_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("hw_encoder");
    for (n, es) in [(8u32, 0u32), (16, 1), (32, 3)] {
        let fmt = PositFormat::of(n, es);
        let dec = DecoderOptimized::new(fmt);
        let enc = EncoderOptimized::new(fmt);
        let fields: Vec<_> = codes(&fmt, 1024).iter().map(|&c| dec.decode(c)).collect();
        g.throughput(Throughput::Elements(fields.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", fmt), &fields, |b, fields| {
            b.iter(|| {
                let mut acc = 0u64;
                for &f in fields {
                    acc ^= enc.encode(black_box(f));
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_mac(c: &mut Criterion) {
    // Measurement note: an earlier BENCH_bench-smoke.json showed
    // hw_mac/optimized/posit(16,1) 4× slower than original (55253 vs
    // 13386 ns). That was a smoke-mode artifact, not a kernel property:
    // the shim's quick mode then timed a single cold iteration, and this
    // sequential-MAC loop is small enough (512 elements) for first-touch
    // page faults and predictor warm-up to dominate one iteration. A full
    // measurement run shows the two generations at parity for (16,1)
    // (original ~10.2µs vs optimized ~9.6µs here), matching every other
    // format. The shim now warms one iteration before timing in quick
    // mode, which keeps that class of phantom outlier out of the JSON.
    let mut g = c.benchmark_group("hw_mac");
    for (n, es) in [(8u32, 1u32), (16, 1), (16, 2)] {
        let fmt = PositFormat::of(n, es);
        let input = codes(&fmt, 512);
        g.throughput(Throughput::Elements(input.len() as u64));
        for (label, generation) in [
            ("original", Generation::Original),
            ("optimized", Generation::Optimized),
        ] {
            let mac = PositMac::with_generation(fmt, generation);
            g.bench_with_input(BenchmarkId::new(label, fmt), &input, |b, input| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for pair in input.chunks(2) {
                        let (a, bb) = (pair[0], pair[pair.len() - 1]);
                        acc = mac.mac(black_box(a), black_box(bb), acc);
                    }
                    acc
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_decoders, bench_encoder_roundtrip, bench_mac
}
criterion_main!(benches);
