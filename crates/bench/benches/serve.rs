//! Criterion benchmarks of the inference server: the dynamic batcher's
//! throughput win. Both rows push the same 8 samples per iteration
//! through the same calibrated quantized MLP on the posit-quire backend
//! — `serve.batched` as one 8-row GEMM batch, `serve.single` as 8
//! single-sample batches — so their ns/iter are directly comparable
//! per-sample costs. The batched row's win is the batcher amortizing
//! per-forward fixed costs (im2col staging, kernel dispatch, operand
//! cache lookups, activation-plane packing setup) over the rows of one
//! GEMM; the 1-channel LeNet keeps the proportional GEMM work small
//! enough that those fixed costs are visible. Both rows sit under the
//! bench-smoke 1.5x regression gate (`(lenet|mlp|serve).*\/posit-quire`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use posit_serve::{InferenceServer, ServeConfig, ServedModel};
use posit_tensor::rng::Prng;
use posit_tensor::Tensor;
use posit_train::{ComputeBackend, MasterWeights, Phase, QuantBuilder, QuantSpec};
use std::hint::black_box;

const SIDE: usize = 16;
const BATCH: usize = 8;

fn server(max_batch: usize) -> InferenceServer {
    let spec = QuantSpec::cifar_paper()
        .with_backend(ComputeBackend::PositQuire)
        .with_master(MasterWeights::Posit);
    let mut rng = Prng::seed(9);
    let mut qb = QuantBuilder::new(spec.clone());
    let control = qb.control();
    let mut net = posit_models::lenet(&mut qb, 1, SIDE, 10, &mut rng);
    let mut cal_rng = Prng::seed(10);
    let cal = Tensor::rand_normal(&[BATCH, 1, SIDE, SIDE], 0.0, 1.0, &mut cal_rng);
    control.set_phase(Phase::Calibrate);
    let _ = posit_nn::Layer::forward(&mut net, &cal, false);
    InferenceServer::new(
        ServedModel::quantized(net, control, spec),
        &[1, SIDE, SIDE],
        ServeConfig {
            max_batch,
            max_wait_ticks: 0,
            ..ServeConfig::default()
        },
    )
    .expect("valid config")
}

fn samples() -> Vec<Tensor> {
    let mut rng = Prng::seed(11);
    (0..BATCH)
        .map(|_| Tensor::rand_normal(&[1, SIDE, SIDE], 0.0, 1.0, &mut rng))
        .collect()
}

/// One timed iteration = `ROUNDS` rounds of: submit the 8 samples, flush,
/// drain the replies. Several rounds per iteration stretch the timed
/// window into the tens of milliseconds, which averages out scheduler
/// noise on small machines — the bench-smoke stage times a single
/// iteration, and the batched-vs-single gap is a few percent.
const ROUNDS: usize = 8;

fn serve_round(srv: &mut InferenceServer, samples: &[Tensor]) -> f32 {
    let mut acc = 0.0;
    for _ in 0..ROUNDS {
        let ids: Vec<_> = samples
            .iter()
            .map(|s| srv.submit(black_box(s)).expect("f32 sample"))
            .collect();
        srv.flush_all().expect("flush");
        for id in ids {
            acc += srv.poll(id).expect("completed").expect("served").logits[0];
        }
    }
    acc
}

fn bench_serve(c: &mut Criterion) {
    let samples = samples();

    // Pre-warm both servers outside the timed windows: the first serve
    // round through a fresh process pays one-time costs (operand-cache
    // fills, allocator growth, page faults on the im2col buffers) that
    // would otherwise land on whichever group happens to run first.
    let mut single = server(1);
    let mut batched = server(BATCH);
    let _ = serve_round(&mut single, &samples);
    let _ = serve_round(&mut batched, &samples);

    let mut g = c.benchmark_group("serve.single");
    g.sample_size(10);
    g.throughput(Throughput::Elements((BATCH * ROUNDS) as u64));
    g.bench_function("posit-quire", |b| {
        b.iter(|| serve_round(&mut single, &samples))
    });
    g.finish();

    let mut g = c.benchmark_group("serve.batched");
    g.sample_size(10);
    g.throughput(Throughput::Elements((BATCH * ROUNDS) as u64));
    g.bench_function("posit-quire", |b| {
        b.iter(|| serve_round(&mut batched, &samples))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);
