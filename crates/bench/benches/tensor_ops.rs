//! Criterion benchmarks of the tensor substrate (GEMM, conv, batchnorm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use posit_nn::{BatchNorm2d, Layer};
use posit_tensor::rng::Prng;
use posit_tensor::{conv, gemm, Tensor};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    let mut rng = Prng::seed(1);
    for size in [32usize, 64, 128] {
        let a: Vec<f32> = (0..size * size).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..size * size).map(|_| rng.uniform(-1.0, 1.0)).collect();
        g.throughput(Throughput::Elements((size * size * size) as u64));
        g.bench_function(BenchmarkId::new("square", size), |bch| {
            bch.iter(|| {
                let mut c = vec![0.0f32; size * size];
                gemm::gemm(size, size, size, black_box(&a), black_box(&b), &mut c);
                c
            })
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    let mut rng = Prng::seed(2);
    for (n, ci, hw, co) in [(8usize, 8usize, 16usize, 16usize), (8, 16, 8, 32)] {
        let input = Tensor::rand_normal(&[n, ci, hw, hw], 0.0, 1.0, &mut rng);
        let weight = Tensor::rand_normal(&[co, ci, 3, 3], 0.0, 0.1, &mut rng);
        let macs = n * co * ci * 9 * hw * hw;
        g.throughput(Throughput::Elements(macs as u64));
        g.bench_function(
            BenchmarkId::new("fwd", format!("{n}x{ci}x{hw}x{hw}->{co}")),
            |bch| bch.iter(|| conv::conv2d(black_box(&input), black_box(&weight), None, 1, 1)),
        );
    }
    g.finish();
}

fn bench_batchnorm(c: &mut Criterion) {
    let mut g = c.benchmark_group("batchnorm");
    let mut rng = Prng::seed(3);
    let x = Tensor::rand_normal(&[16, 32, 8, 8], 0.0, 1.0, &mut rng);
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("fwd_train_16x32x8x8", |bch| {
        let mut bn = BatchNorm2d::new("bn", 32);
        bch.iter(|| bn.forward(black_box(&x), true))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_gemm, bench_conv, bench_batchnorm
}
criterion_main!(benches);
