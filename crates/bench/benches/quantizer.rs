//! Criterion benchmarks of the paper's `P(n,es)` tensor quantizer
//! (Algorithm 1) — the operator inserted at every Fig. 3 edge, so its
//! throughput bounds the posit-training simulation speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use posit::{PositFormat, PositQuantizer, Rounding};
use posit_train::scale;
use std::hint::black_box;

fn tensor(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.731).sin() * 0.1).collect()
}

fn bench_quantize_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantize_slice");
    let xs = tensor(16 * 1024);
    g.throughput(Throughput::Elements(xs.len() as u64));
    for (n, es) in [(8u32, 1u32), (8, 2), (16, 1), (16, 2)] {
        let fmt = PositFormat::of(n, es);
        for mode in [Rounding::ToZero, Rounding::NearestEven] {
            g.bench_function(BenchmarkId::new(format!("{fmt}"), mode.short_name()), |b| {
                let mut q = PositQuantizer::new(fmt, mode);
                b.iter(|| {
                    let mut ys = xs.clone();
                    q.quantize_slice(black_box(&mut ys));
                    ys
                })
            });
        }
        g.bench_function(BenchmarkId::new(format!("{fmt}"), "sr"), |b| {
            let mut q = PositQuantizer::with_seed(fmt, Rounding::Stochastic, 1);
            b.iter(|| {
                let mut ys = xs.clone();
                q.quantize_slice(black_box(&mut ys));
                ys
            })
        });
    }
    g.finish();
}

fn bench_shifted_quantize(c: &mut Criterion) {
    let mut g = c.benchmark_group("eq3_shifted_quantize");
    let xs = tensor(16 * 1024);
    g.throughput(Throughput::Elements(xs.len() as u64));
    let fmt = PositFormat::of(8, 1);
    let se = scale::scale_exp(&xs, 2).unwrap_or(0);
    g.bench_function("posit(8,1)_rtz_scaled", |b| {
        b.iter(|| {
            let mut ys = xs.clone();
            let mut state = 1u64;
            scale::shifted_quantize_slice(
                black_box(&mut ys),
                &fmt,
                se,
                Rounding::ToZero,
                &mut state,
            );
            ys
        })
    });
    g.bench_function("eq2_center_measure", |b| {
        b.iter(|| scale::log2_center(black_box(&xs)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_quantize_slice, bench_shifted_quantize
}
criterion_main!(benches);
