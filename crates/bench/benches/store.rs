//! Chunked-store A/B at checkpoint-sized tensors: what one storage-domain
//! crossing to/from disk costs, and what the codec pipeline buys.
//!
//! Three axes:
//!
//! * **packed-chunked vs flat-f32** — the v2 path (bit-packed posit
//!   chunks with CRC trailers) against a v1-style flat little-endian f32
//!   blob of the same tensor. The byte throughputs differ by the paper's
//!   4× ratio: the packed path moves 1 byte/element where flat f32 moves 4.
//! * **serial vs parallel chunks** — one chunk (single-threaded codec) vs
//!   a grid of chunks encoded/decoded on the scoped-thread partitioner.
//! * **encode vs decode** — write_tensor vs read_tensor round trips
//!   against an in-memory store (no filesystem noise in the numbers).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use posit::{PositFormat, Rounding};
use posit_store::{delete_array, read_tensor, write_tensor_with, MemoryStore, Store};
use posit_tensor::rng::Prng;
use posit_tensor::Tensor;
use std::hint::black_box;

/// A checkpoint-sized weight tensor: 256×1024 ≈ the large FC layers the
/// store shards in practice.
const ROWS: usize = 256;
const COLS: usize = 1024;

fn bench_store(c: &mut Criterion) {
    let fmt = PositFormat::of(8, 1);
    let mut rng = Prng::seed(17);
    let dense = Tensor::rand_normal(&[ROWS, COLS], 0.0, 0.5, &mut rng);
    let packed = dense.to_posit(fmt, 0, Rounding::NearestEven);
    let serial_chunks = vec![ROWS, COLS]; // one chunk: serial codec path
    let parallel_chunks = vec![16, COLS]; // 16 chunks: scoped-thread path

    let mut g = c.benchmark_group(format!("store/{ROWS}x{COLS}"));

    // -- encode -----------------------------------------------------------
    g.throughput(Throughput::Bytes(packed.nbytes() as u64));
    for (label, chunks) in [
        ("encode/posit-serial", &serial_chunks),
        ("encode/posit-parallel", &parallel_chunks),
    ] {
        g.bench_function(label, |b| {
            let store = MemoryStore::new();
            b.iter(|| {
                let stats =
                    write_tensor_with(&store, "w", black_box(&packed), chunks, None).unwrap();
                black_box(stats)
            })
        });
    }

    // Flat f32 baseline: the v1 dataflow — dense f32 view serialized as
    // one little-endian blob, no chunking, no checksum.
    g.throughput(Throughput::Bytes(dense.nbytes() as u64));
    g.bench_function("encode/flat-f32", |b| {
        let store = MemoryStore::new();
        b.iter(|| {
            let blob: Vec<u8> = black_box(&dense)
                .data()
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            store.set("w.f32", &blob).unwrap();
            blob.len()
        })
    });

    // -- decode -----------------------------------------------------------
    g.throughput(Throughput::Bytes(packed.nbytes() as u64));
    for (label, chunks) in [
        ("decode/posit-serial", &serial_chunks),
        ("decode/posit-parallel", &parallel_chunks),
    ] {
        let store = MemoryStore::new();
        delete_array(&store, "w").unwrap();
        write_tensor_with(&store, "w", &packed, chunks, None).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| black_box(read_tensor(&store, "w").unwrap()))
        });
    }

    g.throughput(Throughput::Bytes(dense.nbytes() as u64));
    g.bench_function("decode/flat-f32", |b| {
        let store = MemoryStore::new();
        let blob: Vec<u8> = dense.data().iter().flat_map(|v| v.to_le_bytes()).collect();
        store.set("w.f32", &blob).unwrap();
        b.iter(|| {
            let bytes = store.get("w.f32").unwrap().unwrap();
            let data: Vec<f32> = bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            black_box(Tensor::from_vec(data, &[ROWS, COLS]))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
