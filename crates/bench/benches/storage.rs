//! Storage-domain A/B at the LeNet/MLP layer shapes: posit-resident
//! operands (packed bits decoded straight into the quire kernel) vs the
//! f32 round trip the refactor removed (quantize → f32 staging buffer →
//! re-encode planes inside the kernel).
//!
//! The `Bytes` throughput line is the paper's memory-traffic argument made
//! measurable: the resident path moves 1 byte/element for posit(8,1)
//! operands where the round trip moves 4 (f32 staging), so its reported
//! MiB/s is computed over a 4× smaller byte count per step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use posit::{PositFormat, Rounding};
use posit_models::{lenet_gemm_shapes, mlp_gemm_shapes, GemmShape};
use posit_tensor::rng::Prng;
use posit_tensor::{Backend, Tensor};
use std::hint::black_box;

fn bench_shapes() -> Vec<GemmShape> {
    let mut shapes = lenet_gemm_shapes(28, 32, 10);
    shapes.extend(mlp_gemm_shapes(32, &[256, 128, 10]));
    shapes
}

fn bench_storage(c: &mut Criterion) {
    let fmt = PositFormat::of(8, 1);
    let rounding = Rounding::NearestEven;
    let backend = Backend::PositQuire { fmt, rounding };
    let mut rng = Prng::seed(7);
    for shape in bench_shapes() {
        let (m, k, n) = (shape.m, shape.k, shape.n);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        let pa = a.to_posit(fmt, 0, rounding);
        let pb = b.to_posit(fmt, 0, rounding);
        let out_bytes = 4 * m * n;
        let mut g = c.benchmark_group(format!("storage/{}", shape.label));

        // Resident: operands live as packed posit bits between steps; one
        // step reads bits, decodes once inside the kernel, writes f32 out.
        g.throughput(Throughput::Bytes(
            (pa.nbytes() + pb.nbytes() + out_bytes) as u64,
        ));
        g.bench_function("resident-posit", |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; m * n];
                backend.gemm_op(
                    m,
                    k,
                    n,
                    black_box(&pa).operand(),
                    black_box(&pb).operand(),
                    &mut out,
                );
                out
            })
        });

        // Round trip: operands live as f32 on the posit grid; one step
        // re-quantizes them through the f32 staging path and the kernel
        // re-encodes planes from f32 — the pre-refactor dataflow.
        g.throughput(Throughput::Bytes(
            (a.nbytes() + b.nbytes() + out_bytes) as u64,
        ));
        g.bench_function("round-trip-f32", |bch| {
            bch.iter(|| {
                let qa = black_box(&a).to_posit(fmt, 0, rounding).to_f32();
                let qb = black_box(&b).to_posit(fmt, 0, rounding).to_f32();
                let mut out = vec![0.0f32; m * n];
                backend.gemm(m, k, n, qa.data(), qb.data(), &mut out);
                out
            })
        });
        g.finish();
    }

    // The transitions themselves, at the largest FC shape: what one
    // storage-domain crossing costs in each direction.
    let t = Tensor::rand_uniform(&[32, 256], -1.0, 1.0, &mut rng);
    let p = t.to_posit(fmt, 0, rounding);
    let mut g = c.benchmark_group("storage/transitions");
    g.throughput(Throughput::Elements(t.len() as u64));
    g.bench_function("to_posit", |bch| {
        bch.iter(|| black_box(&t).to_posit(fmt, 0, rounding))
    });
    g.bench_function("to_f32", |bch| bch.iter(|| black_box(&p).to_f32()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10);
    targets = bench_storage
}
criterion_main!(benches);
