//! Shared harness code for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper maps to one binary in `src/bin/`
//! (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! | artifact | binary |
//! |---|---|
//! | Table I (posit structure) | `table1` |
//! | Fig. 2 (weight histograms) | `fig2` |
//! | Fig. 3 (dataflow) | asserted by `tests/fig3_dataflow.rs` at the root |
//! | Table III (training accuracy) | `table3` |
//! | Table IV (encoder/decoder) | `table4` |
//! | Fig. 4–6 (MAC circuits) | `table4`/`table5` + `mac_hardware` example |
//! | Table V (MAC power/area) | `table5` |
//! | A1–A4 ablations | `ablations` |

use posit_data::{Dataset, SyntheticCifar, SyntheticImageNet};
use posit_nn::StepLr;
use posit_train::{ComputeBackend, QuantSpec, RunOptions, TrainConfig, TrainReport, Trainer};

/// Size preset for the training experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke run (CI-friendly).
    Quick,
    /// The default minutes-scale run reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parse from a CLI flag (`--quick`).
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// Parse a `--backend=<f32|posit-emulated|posit-quire>` flag (default
/// `f32`) — the trainer-level A/B switch over GEMM kernel families.
///
/// # Panics
///
/// Panics on an unknown backend name, listing the valid ones.
pub fn backend_from_args(args: &[String]) -> ComputeBackend {
    args.iter()
        .find_map(|a| a.strip_prefix("--backend="))
        .map(|v| {
            ComputeBackend::parse(v).unwrap_or_else(|| {
                panic!("unknown backend '{v}' (expected f32|posit-emulated|posit-quire)")
            })
        })
        .unwrap_or_default()
}

/// Parse `--data-parallel=<lanes>` and `--grad-accum=<steps>` flags (both
/// default 1) — the exact sharded-trainer knobs of
/// `TrainConfig::data_parallel` / `grad_accum_steps`.
///
/// Values above 1 require `--backend=posit-quire` (the exactness guarantee
/// rests on quire accumulation; `TrainConfig::validate` rejects the rest)
/// and a batch-separable model (`--model=lenet` — batch normalization
/// couples rows through batch statistics, so the ResNet cannot shard).
///
/// # Panics
///
/// Panics if either value is present but not a positive integer.
pub fn dp_from_args(args: &[String]) -> (usize, usize) {
    let parse = |key: &str| {
        args.iter()
            .find_map(|a| a.strip_prefix(key))
            .map(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("{key} wants a positive integer, got '{v}'"))
            })
            .unwrap_or(1)
    };
    (parse("--data-parallel="), parse("--grad-accum="))
}

/// Model family for the training-table binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableModel {
    /// The paper's scaled ResNet-18 (default; contains batch norm).
    Resnet,
    /// BN-free LeNet — the batch-separable model that composes with
    /// `--data-parallel`/`--grad-accum` (needs image side >= 16).
    Lenet,
}

impl TableModel {
    /// Parse a `--model=<resnet|lenet>` flag (default `resnet`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown model name.
    pub fn from_args(args: &[String]) -> TableModel {
        args.iter()
            .find_map(|a| a.strip_prefix("--model="))
            .map(|v| match v {
                "resnet" => TableModel::Resnet,
                "lenet" => TableModel::Lenet,
                _ => panic!("unknown model '{v}' (expected resnet|lenet)"),
            })
            .unwrap_or(TableModel::Resnet)
    }

    /// Display name in the Table III layout.
    pub fn label(self) -> &'static str {
        match self {
            TableModel::Resnet => "ResNet-18 (scaled)",
            TableModel::Lenet => "LeNet",
        }
    }

    /// Smallest image side the model accepts (LeNet's two valid 5×5
    /// convolutions need 16; the ResNet handles anything the pools allow).
    pub fn min_side(self) -> usize {
        match self {
            TableModel::Resnet => 0,
            TableModel::Lenet => 16,
        }
    }

    /// Build the trainer for `config` on `side`-pixel RGB inputs.
    pub fn trainer(self, config: &TrainConfig, side: usize) -> Trainer {
        match self {
            TableModel::Resnet => Trainer::resnet(config),
            TableModel::Lenet => Trainer::lenet(config, 3, side),
        }
    }

    /// Per-model schedule fix-up: LeNet has no batch norm to absorb the
    /// ResNet schedule's 0.05 peak rate (it collapses to dead ReLUs), so
    /// its runs restart the same step schedule from 0.02.
    pub fn tune(self, config: TrainConfig) -> TrainConfig {
        match self {
            TableModel::Resnet => config,
            TableModel::Lenet => {
                let mut cfg = config;
                cfg.schedule =
                    StepLr::new(0.02, vec![cfg.epochs * 6 / 10, cfg.epochs * 8 / 10], 0.1);
                cfg
            }
        }
    }
}

/// The CIFAR-10 stand-in experiment fixture (Table III, left column).
pub struct CifarExperiment {
    /// Training split.
    pub train: Dataset,
    /// Held-out split.
    pub test: Dataset,
    /// Baseline config (FP32); attach quant specs for the posit runs.
    pub config: TrainConfig,
    /// Image side the splits were generated at.
    pub side: usize,
}

impl CifarExperiment {
    /// Build the fixture at a scale. The Full noise level (2.2) is chosen
    /// so the FP32 baseline lands in the 80-95% band like the paper's
    /// CIFAR-10 runs, rather than saturating at 100%.
    pub fn new(scale: Scale) -> CifarExperiment {
        CifarExperiment::with_min_side(scale, 0)
    }

    /// Same fixture with the image side clamped up to `min_side` (LeNet
    /// rejects the Quick preset's side-8 images; see
    /// [`TableModel::min_side`]).
    pub fn with_min_side(scale: Scale, min_side: usize) -> CifarExperiment {
        let (side, n_train, n_test, base, epochs, noise) = match scale {
            Scale::Quick => (8, 320, 80, 4, 6, 0.7),
            Scale::Full => (16, 2560, 640, 8, 18, 2.2),
        };
        let side = side.max(min_side);
        let gen = SyntheticCifar::with_noise(side, 42, noise);
        CifarExperiment {
            train: gen.train(n_train, 1),
            test: gen.test(n_test, 1),
            config: TrainConfig::cifar_scaled(base, epochs).with_seed(7),
            side,
        }
    }
}

/// The ImageNet stand-in experiment fixture (Table III, right column).
pub struct ImageNetExperiment {
    /// Training split.
    pub train: Dataset,
    /// Held-out split.
    pub test: Dataset,
    /// Baseline config (FP32).
    pub config: TrainConfig,
    /// Image side the splits were generated at.
    pub side: usize,
}

impl ImageNetExperiment {
    /// Build the fixture at a scale (Full noise tuned like
    /// [`CifarExperiment::new`], targeting the paper's ~71% ImageNet band).
    pub fn new(scale: Scale) -> ImageNetExperiment {
        ImageNetExperiment::with_min_side(scale, 0)
    }

    /// Same fixture with the image side clamped up to `min_side` (see
    /// [`CifarExperiment::with_min_side`]).
    pub fn with_min_side(scale: Scale, min_side: usize) -> ImageNetExperiment {
        let (side, classes, n_train, n_test, base, epochs, noise) = match scale {
            Scale::Quick => (8, 10, 400, 100, 4, 6, 0.9),
            Scale::Full => (16, 20, 3200, 800, 8, 18, 2.4),
        };
        let side = side.max(min_side);
        let gen = SyntheticImageNet::with_noise(side, classes, 43, noise);
        ImageNetExperiment {
            train: gen.train(n_train, 1),
            test: gen.test(n_test, 1),
            config: TrainConfig::imagenet_scaled(base, classes, epochs).with_seed(7),
            side,
        }
    }
}

/// Run one configuration on the scaled ResNet and return its report,
/// logging per-epoch lines to stderr.
pub fn run_logged(
    label: &str,
    train: &Dataset,
    test: &Dataset,
    config: &TrainConfig,
) -> TrainReport {
    run_logged_trainer(label, Trainer::resnet(config), train, test, config)
}

/// [`run_logged`] on a caller-built trainer (e.g. [`TableModel::trainer`]).
pub fn run_logged_trainer(
    label: &str,
    mut trainer: Trainer,
    train: &Dataset,
    test: &Dataset,
    config: &TrainConfig,
) -> TrainReport {
    eprintln!("== {label} ==");
    trainer
        .run(RunOptions::new(train, test, config).on_epoch(|e| {
            eprintln!(
                "  epoch {:>3} [{:>9}] lr {:<7.4} loss {:<7.4} train {:>5.1}% test {:>5.1}%",
                e.epoch,
                e.phase,
                e.lr,
                e.train_loss,
                100.0 * e.train_acc,
                100.0 * e.test_acc
            );
        }))
        .expect("no store, no store errors")
}

/// Print one dataset column in the paper's Table III layout.
pub fn print_table3_row(dataset: &str, model: &str, fp32: &TrainReport, posit: &TrainReport) {
    println!("Dataset            {dataset}");
    println!("model              {model}");
    println!("FP32 baseline      {:.2}", 100.0 * fp32.best_test_acc);
    println!("posit              {:.2}", 100.0 * posit.best_test_acc);
    println!(
        "gap                {:+.2} points (paper: CIFAR -0.53, ImageNet +0.07)",
        100.0 * (posit.best_test_acc - fp32.best_test_acc)
    );
}

/// The paper's Table III numbers, for reference printing.
pub mod paper {
    /// CIFAR-10 FP32 baseline top-1 (%).
    pub const CIFAR_FP32: f64 = 93.40;
    /// CIFAR-10 posit top-1 (%).
    pub const CIFAR_POSIT: f64 = 92.87;
    /// ImageNet FP32 baseline top-1 (%).
    pub const IMAGENET_FP32: f64 = 71.02;
    /// ImageNet posit top-1 (%).
    pub const IMAGENET_POSIT: f64 = 71.09;
}

/// Named spec variants for the ablation binary.
pub fn ablation_specs() -> Vec<(&'static str, QuantSpec)> {
    vec![
        ("paper (scaling on)", QuantSpec::cifar_paper()),
        (
            "no scaling (A2)",
            QuantSpec::cifar_paper().without_scaling(),
        ),
    ]
}
