//! Shared harness code for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper maps to one binary in `src/bin/`
//! (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! | artifact | binary |
//! |---|---|
//! | Table I (posit structure) | `table1` |
//! | Fig. 2 (weight histograms) | `fig2` |
//! | Fig. 3 (dataflow) | asserted by `tests/fig3_dataflow.rs` at the root |
//! | Table III (training accuracy) | `table3` |
//! | Table IV (encoder/decoder) | `table4` |
//! | Fig. 4–6 (MAC circuits) | `table4`/`table5` + `mac_hardware` example |
//! | Table V (MAC power/area) | `table5` |
//! | A1–A4 ablations | `ablations` |

use posit_data::{Dataset, SyntheticCifar, SyntheticImageNet};
use posit_train::{ComputeBackend, QuantSpec, TrainConfig, TrainReport, Trainer};

/// Size preset for the training experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke run (CI-friendly).
    Quick,
    /// The default minutes-scale run reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parse from a CLI flag (`--quick`).
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// Parse a `--backend=<f32|posit-emulated|posit-quire>` flag (default
/// `f32`) — the trainer-level A/B switch over GEMM kernel families.
///
/// # Panics
///
/// Panics on an unknown backend name, listing the valid ones.
pub fn backend_from_args(args: &[String]) -> ComputeBackend {
    args.iter()
        .find_map(|a| a.strip_prefix("--backend="))
        .map(|v| {
            ComputeBackend::parse(v).unwrap_or_else(|| {
                panic!("unknown backend '{v}' (expected f32|posit-emulated|posit-quire)")
            })
        })
        .unwrap_or_default()
}

/// The CIFAR-10 stand-in experiment fixture (Table III, left column).
pub struct CifarExperiment {
    /// Training split.
    pub train: Dataset,
    /// Held-out split.
    pub test: Dataset,
    /// Baseline config (FP32); attach quant specs for the posit runs.
    pub config: TrainConfig,
}

impl CifarExperiment {
    /// Build the fixture at a scale. The Full noise level (2.2) is chosen
    /// so the FP32 baseline lands in the 80-95% band like the paper's
    /// CIFAR-10 runs, rather than saturating at 100%.
    pub fn new(scale: Scale) -> CifarExperiment {
        let (side, n_train, n_test, base, epochs, noise) = match scale {
            Scale::Quick => (8, 320, 80, 4, 6, 0.7),
            Scale::Full => (16, 2560, 640, 8, 18, 2.2),
        };
        let gen = SyntheticCifar::with_noise(side, 42, noise);
        CifarExperiment {
            train: gen.train(n_train, 1),
            test: gen.test(n_test, 1),
            config: TrainConfig::cifar_scaled(base, epochs).with_seed(7),
        }
    }
}

/// The ImageNet stand-in experiment fixture (Table III, right column).
pub struct ImageNetExperiment {
    /// Training split.
    pub train: Dataset,
    /// Held-out split.
    pub test: Dataset,
    /// Baseline config (FP32).
    pub config: TrainConfig,
}

impl ImageNetExperiment {
    /// Build the fixture at a scale (Full noise tuned like
    /// [`CifarExperiment::new`], targeting the paper's ~71% ImageNet band).
    pub fn new(scale: Scale) -> ImageNetExperiment {
        let (side, classes, n_train, n_test, base, epochs, noise) = match scale {
            Scale::Quick => (8, 10, 400, 100, 4, 6, 0.9),
            Scale::Full => (16, 20, 3200, 800, 8, 18, 2.4),
        };
        let gen = SyntheticImageNet::with_noise(side, classes, 43, noise);
        ImageNetExperiment {
            train: gen.train(n_train, 1),
            test: gen.test(n_test, 1),
            config: TrainConfig::imagenet_scaled(base, classes, epochs).with_seed(7),
        }
    }
}

/// Run one configuration and return its report, logging per-epoch lines to
/// stderr.
pub fn run_logged(
    label: &str,
    train: &Dataset,
    test: &Dataset,
    config: &TrainConfig,
) -> TrainReport {
    eprintln!("== {label} ==");
    let mut trainer = Trainer::resnet(config);
    trainer.run_with(train, test, config, |e| {
        eprintln!(
            "  epoch {:>3} [{:>9}] lr {:<7.4} loss {:<7.4} train {:>5.1}% test {:>5.1}%",
            e.epoch,
            e.phase,
            e.lr,
            e.train_loss,
            100.0 * e.train_acc,
            100.0 * e.test_acc
        );
    })
}

/// Print one dataset column in the paper's Table III layout.
pub fn print_table3_row(dataset: &str, model: &str, fp32: &TrainReport, posit: &TrainReport) {
    println!("Dataset            {dataset}");
    println!("model              {model}");
    println!("FP32 baseline      {:.2}", 100.0 * fp32.best_test_acc);
    println!("posit              {:.2}", 100.0 * posit.best_test_acc);
    println!(
        "gap                {:+.2} points (paper: CIFAR -0.53, ImageNet +0.07)",
        100.0 * (posit.best_test_acc - fp32.best_test_acc)
    );
}

/// The paper's Table III numbers, for reference printing.
pub mod paper {
    /// CIFAR-10 FP32 baseline top-1 (%).
    pub const CIFAR_FP32: f64 = 93.40;
    /// CIFAR-10 posit top-1 (%).
    pub const CIFAR_POSIT: f64 = 92.87;
    /// ImageNet FP32 baseline top-1 (%).
    pub const IMAGENET_FP32: f64 = 71.02;
    /// ImageNet posit top-1 (%).
    pub const IMAGENET_POSIT: f64 = 71.09;
}

/// Named spec variants for the ablation binary.
pub fn ablation_specs() -> Vec<(&'static str, QuantSpec)> {
    vec![
        ("paper (scaling on)", QuantSpec::cifar_paper()),
        (
            "no scaling (A2)",
            QuantSpec::cifar_paper().without_scaling(),
        ),
    ]
}
