//! Ablations backing the design choices the paper asserts qualitatively in
//! §III-B (DESIGN.md experiments A1–A4):
//!
//! * `warmup`   — A1: warm-up on/off for the 8-bit CIFAR recipe;
//! * `scaling`  — A2: Eq. 2–3 distribution shifting on/off + σ sweep;
//! * `es`       — A3: es ∈ {0,1,2,3} uniform formats + §III-B criterion;
//! * `rounding` — A4: round-to-zero vs nearest-even vs stochastic;
//! * `master`   — A5: FP32 vs posit master weights (the RTZ ratchet).
//!
//! ```text
//! cargo run --release -p posit-bench --bin ablations -- <warmup|scaling|es|rounding|master|all> [--quick]
//! ```

use posit::{PositFormat, Rounding};
use posit_bench::{run_logged, CifarExperiment, Scale};
use posit_train::es_select::{select_es, LogRange};
use posit_train::{MasterWeights, QuantSpec, RunOptions, Trainer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    if which == "warmup" || which == "all" {
        ablate_warmup(scale);
    }
    if which == "scaling" || which == "all" {
        ablate_scaling(scale);
    }
    if which == "es" || which == "all" {
        ablate_es(scale);
    }
    if which == "rounding" || which == "all" {
        ablate_rounding(scale);
    }
    if which == "master" || which == "all" {
        ablate_master(scale);
    }
}

fn ablate_master(scale: Scale) {
    println!("=== A5: master-weight policy (DESIGN.md §5.4b — the RTZ ratchet) ===");
    let exp = CifarExperiment::new(scale);
    for (label, master) in [
        ("FP32 master (default)", MasterWeights::Fp32),
        ("posit master (ratchet)", MasterWeights::Posit),
    ] {
        let spec = QuantSpec::cifar_paper().with_master(master);
        let cfg = trimmed(&exp).with_quant(spec);
        let r = run_logged(label, &exp.train, &exp.test, &cfg);
        println!("{label}: best test acc {:.2}%", 100.0 * r.best_test_acc);
    }
}

fn trimmed(exp: &CifarExperiment) -> posit_train::TrainConfig {
    // The ablation sweeps run many configurations; cap the schedule so the
    // whole suite stays within minutes while the effects remain visible.
    let mut cfg = exp.config.clone();
    cfg.epochs = cfg.epochs.min(8);
    cfg
}

fn ablate_warmup(scale: Scale) {
    println!("=== A1: warm-up training (paper §III-B: required for convergence) ===");
    let exp = CifarExperiment::new(scale);
    for warmup in [0usize, 1, 2] {
        let cfg = trimmed(&exp)
            .with_quant(QuantSpec::cifar_paper())
            .with_warmup(warmup);
        let r = run_logged(&format!("warm-up = {warmup}"), &exp.train, &exp.test, &cfg);
        println!(
            "warmup {warmup}: best test acc {:.2}%",
            100.0 * r.best_test_acc
        );
    }
}

fn ablate_scaling(scale: Scale) {
    println!("=== A2: distribution-based shifting (Eq. 2-3) ===");
    let exp = CifarExperiment::new(scale);
    for (label, spec) in [
        ("scaling ON,  sigma=2 (paper)", QuantSpec::cifar_paper()),
        (
            "scaling ON,  sigma=0",
            QuantSpec::cifar_paper().with_sigma(0),
        ),
        (
            "scaling ON,  sigma=4",
            QuantSpec::cifar_paper().with_sigma(4),
        ),
        ("scaling OFF", QuantSpec::cifar_paper().without_scaling()),
    ] {
        let cfg = trimmed(&exp).with_quant(spec);
        let r = run_logged(label, &exp.train, &exp.test, &cfg);
        println!("{label}: best test acc {:.2}%", 100.0 * r.best_test_acc);
    }
}

fn ablate_es(scale: Scale) {
    println!("=== A3: dynamic range / es selection (paper §III-B) ===");
    // First the criterion itself, measured on real training tensors.
    let exp = CifarExperiment::new(scale);
    let cfg = trimmed(&exp);
    let mut trainer = Trainer::resnet(&cfg);
    let _ = trainer
        .run(RunOptions::new(&exp.train, &exp.test, &cfg))
        .unwrap();
    println!("log-domain spans of trained parameters (criterion inputs):");
    use posit_nn::Layer;
    for p in trainer.net().params().iter().take(8) {
        if let Some(r) = LogRange::measure(p.value.data()) {
            println!(
                "  {:<28} span {:>6.1} binades -> es(n=8) = {}",
                p.name,
                r.span(),
                select_es(8, r.span())
            );
        }
    }
    // Then end-to-end accuracy for uniform es choices.
    for es in 0..=2u32 {
        let spec = QuantSpec::uniform(PositFormat::of(8, es));
        let cfg = trimmed(&exp).with_quant(spec);
        let r = run_logged(
            &format!("uniform posit(8,{es})"),
            &exp.train,
            &exp.test,
            &cfg,
        );
        println!("es={es}: best test acc {:.2}%", 100.0 * r.best_test_acc);
    }
}

fn ablate_rounding(scale: Scale) {
    println!("=== A4: rounding mode of the P(.) operator ===");
    let exp = CifarExperiment::new(scale);
    for mode in [
        Rounding::ToZero,
        Rounding::NearestEven,
        Rounding::Stochastic,
    ] {
        let spec = QuantSpec::cifar_paper().with_rounding(mode);
        let cfg = trimmed(&exp).with_quant(spec);
        let r = run_logged(&format!("{mode}"), &exp.train, &exp.test, &cfg);
        println!("{mode}: best test acc {:.2}%", 100.0 * r.best_test_acc);
    }
}
