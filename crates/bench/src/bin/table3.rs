//! Regenerates **Table III** of the paper: validation accuracy of FP32
//! baseline vs posit training on the CIFAR-10 and ImageNet stand-ins
//! (DESIGN.md §2 documents the dataset/model substitutions; absolute
//! accuracies differ from the paper, the *gap* between FP32 and posit is
//! the reproduced quantity).
//!
//! ```text
//! cargo run --release -p posit-bench --bin table3 -- [cifar|imagenet|all] [--quick] \
//!     [--backend=<f32|posit-emulated|posit-quire>] [--model=<resnet|lenet>] \
//!     [--data-parallel=<lanes>] [--grad-accum=<steps>]
//! ```
//!
//! `--backend` selects the GEMM kernel family for the posit runs: `f32`
//! (the paper's simulation, default), `posit-emulated` (per-element
//! quantization around f32 kernels) or `posit-quire` (decode-once posit
//! kernels with exact quire accumulation — orders of magnitude slower,
//! pair with `--quick`).
//!
//! `--data-parallel`/`--grad-accum` shard the posit runs' mini-batches
//! through the exact quire all-reduce (bit-identical to serial — see
//! "Deterministic data parallelism" in README.md). They require
//! `--backend=posit-quire` plus the batch-separable `--model=lenet`: the
//! ResNet's batch normalization couples rows through batch statistics, so
//! the trainer refuses to shard it.

use posit_bench::{
    backend_from_args, dp_from_args, paper, print_table3_row, run_logged_trainer, CifarExperiment,
    ImageNetExperiment, Scale, TableModel,
};
use posit_train::QuantSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let backend = backend_from_args(&args);
    let model = TableModel::from_args(&args);
    let (lanes, accum) = dp_from_args(&args);
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    println!("TABLE III: TRAINING CONFIGURATIONS AND VALIDATE ACCURACIES RESULTS");
    println!(
        "(scaled reproduction; paper reference: CIFAR {:.2} -> {:.2}, ImageNet {:.2} -> {:.2})",
        paper::CIFAR_FP32,
        paper::CIFAR_POSIT,
        paper::IMAGENET_FP32,
        paper::IMAGENET_POSIT
    );
    println!();

    if which == "cifar" || which == "all" {
        let exp = CifarExperiment::with_min_side(scale, model.min_side());
        let base_cfg = model.tune(exp.config.clone());
        let fp32 = run_logged_trainer(
            "CIFAR stand-in, FP32 baseline",
            model.trainer(&base_cfg, exp.side),
            &exp.train,
            &exp.test,
            &base_cfg,
        );
        let posit_cfg = base_cfg
            .clone()
            .with_quant(QuantSpec::cifar_paper().with_backend(backend))
            .with_data_parallel(lanes)
            .with_grad_accum(accum);
        let posit = run_logged_trainer(
            &format!(
                "CIFAR stand-in, posit (8,1)/(8,2) CONV + (16,1)/(16,2) BN, warm-up 1, {} kernels",
                backend.name()
            ),
            model.trainer(&posit_cfg, exp.side),
            &exp.train,
            &exp.test,
            &posit_cfg,
        );
        println!("--- CIFAR-10 stand-in ---");
        print_table3_row("synthetic-CIFAR-10", model.label(), &fp32, &posit);
        println!(
            "batch size         {}\nepochs             {}\noptimizer          SGD with Moment 0.9\nwarm-up            1 epoch\n",
            posit_cfg.batch_size, posit_cfg.epochs
        );
    }

    if which == "imagenet" || which == "all" {
        let exp = ImageNetExperiment::with_min_side(scale, model.min_side());
        let base_cfg = model.tune(exp.config.clone());
        let fp32 = run_logged_trainer(
            "ImageNet stand-in, FP32 baseline",
            model.trainer(&base_cfg, exp.side),
            &exp.train,
            &exp.test,
            &base_cfg,
        );
        let posit_cfg = base_cfg
            .clone()
            .with_quant(QuantSpec::imagenet_paper().with_backend(backend))
            .with_data_parallel(lanes)
            .with_grad_accum(accum);
        let posit = run_logged_trainer(
            &format!(
                "ImageNet stand-in, posit (16,1) fwd/update + (16,2) bwd, warm-up 5, {} kernels",
                backend.name()
            ),
            model.trainer(&posit_cfg, exp.side),
            &exp.train,
            &exp.test,
            &posit_cfg,
        );
        println!("--- ImageNet stand-in ---");
        print_table3_row("synthetic-ImageNet", model.label(), &fp32, &posit);
        println!(
            "batch size         {}\nepochs             {}\noptimizer          SGD with Moment 0.9\nwarm-up            {} epochs\n",
            posit_cfg.batch_size, posit_cfg.epochs, posit_cfg.warmup_epochs
        );
    }
}
