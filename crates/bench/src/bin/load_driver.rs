//! Synthetic load driver for the `posit-serve` inference server.
//!
//! Builds a calibrated quantized LeNet, checkpoints it, restores it into
//! an [`InferenceServer`] (the store path is the server's only loading
//! path), then replays synthetic single-sample traffic — uniform and
//! bursty arrival patterns from the in-tree xoshiro PRNG — against a
//! sweep of batcher configurations, printing a latency/throughput table
//! (recorded in EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p posit-bench --bin load_driver [--quick]`
//!
//! Queue latency is in deterministic virtual-time ticks (one tick per
//! driver loop iteration); compute latency and throughput are wall-clock.

use posit_bench::Scale;
use posit_nn::{checkpoint, Layer};
use posit_serve::{InferenceServer, ServeConfig, ServeStats, ServedModel};
use posit_store::MemoryStore;
use posit_tensor::rng::Prng;
use posit_tensor::Tensor;
use posit_train::{ComputeBackend, MasterWeights, Phase, QuantBuilder, QuantSpec};

const SIDE: usize = 16;
const CLASSES: usize = 10;

fn spec() -> QuantSpec {
    QuantSpec::cifar_paper()
        .with_backend(ComputeBackend::PositQuire)
        .with_master(MasterWeights::Posit)
}

/// Calibrate a random LeNet, round-trip it through a v2 checkpoint, and
/// serve it from the store.
fn server(cfg: ServeConfig, store: &MemoryStore) -> InferenceServer {
    let mut rng = Prng::seed(1234);
    let mut qb = QuantBuilder::new(spec());
    let control = qb.control();
    let net = posit_models::lenet(&mut qb, 3, SIDE, CLASSES, &mut rng);
    InferenceServer::from_store(
        ServedModel::quantized(net, control, spec()),
        store,
        "load-driver-model",
        &[3, SIDE, SIDE],
        cfg,
    )
    .expect("serve from checkpoint")
}

/// Build the checkpoint the sweep serves from: calibrated scales + posit
/// weights, written through the checkpoint façade.
fn checkpoint_model(store: &MemoryStore) {
    let mut rng = Prng::seed(1234);
    let mut qb = QuantBuilder::new(spec());
    let control = qb.control();
    let mut net = posit_models::lenet(&mut qb, 3, SIDE, CLASSES, &mut rng);
    let mut cal_rng = Prng::seed(4321);
    let cal = Tensor::rand_normal(&[8, 3, SIDE, SIDE], 0.0, 1.0, &mut cal_rng);
    control.set_phase(Phase::Calibrate);
    let _ = net.forward(&cal, false);
    control.set_phase(Phase::Posit);
    checkpoint::write(
        &net,
        checkpoint::Sink::Store {
            store,
            prefix: "load-driver-model",
        },
        checkpoint::Version::V2,
    )
    .expect("checkpoint the served model");
}

fn sample(i: u64) -> Tensor {
    let mut rng = Prng::seed(0xD21 ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    Tensor::rand_normal(&[3, SIDE, SIDE], 0.0, 1.0, &mut rng)
}

/// How many requests arrive at each driver tick.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pattern {
    /// One request per tick, like a paced client.
    Uniform,
    /// Poisson-ish bursts: most ticks idle, occasional clumps of 1–8.
    Bursty,
}

impl Pattern {
    fn label(self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Bursty => "bursty",
        }
    }

    fn arrivals(self, rng: &mut Prng) -> usize {
        match self {
            Pattern::Uniform => 1,
            Pattern::Bursty => {
                if rng.uniform(0.0, 1.0) < 0.25 {
                    1 + (rng.uniform(0.0, 8.0) as usize)
                } else {
                    0
                }
            }
        }
    }
}

/// Drive `n` requests through a fresh server: per tick, submit the
/// pattern's arrivals, advance the virtual clock, drain replies.
fn drive(pattern: Pattern, cfg: ServeConfig, n: u64, store: &MemoryStore) -> ServeStats {
    let mut srv = server(cfg, store);
    let mut rng = Prng::seed(77);
    let mut submitted = 0u64;
    let mut ids = Vec::new();
    while submitted < n {
        for _ in 0..pattern.arrivals(&mut rng) {
            if submitted == n {
                break;
            }
            ids.push(srv.submit(&sample(submitted)).expect("f32 sample"));
            submitted += 1;
        }
        srv.tick().expect("tick");
    }
    srv.flush_all().expect("flush");
    for id in ids {
        srv.poll(id).expect("every request completed");
    }
    srv.stats()
}

fn print_row(pattern: &str, cfg: ServeConfig, s: &ServeStats) {
    println!(
        "{pattern:<8} {:>9} {:>5} {:>8} {:>7.2} {:>6} {:>6} {:>7} {:>8} {:>10} {:>10} {:>13.1} {:>13.1} {:>11.0}",
        cfg.max_batch,
        cfg.max_wait_ticks,
        s.batches,
        s.mean_batch,
        s.batch_p50,
        s.batch_p99,
        s.full_batches,
        s.queue_depth_peak,
        s.queue_p50_ticks,
        s.queue_p99_ticks,
        s.compute_p50_ns as f64 / 1e3,
        s.compute_p99_ns as f64 / 1e3,
        s.throughput_sps,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u64 = match Scale::from_args(&args) {
        Scale::Quick => 64,
        Scale::Full => 400,
    };
    let store = MemoryStore::new();
    checkpoint_model(&store);

    println!("== serve load driver: LeNet 3x{SIDE}x{SIDE}, posit-quire, {n} requests ==");
    println!(
        "{:<8} {:>9} {:>5} {:>8} {:>7} {:>6} {:>6} {:>7} {:>8} {:>10} {:>10} {:>13} {:>13} {:>11}",
        "pattern",
        "max_batch",
        "wait",
        "batches",
        "mean_b",
        "b_p50",
        "b_p99",
        "full_b",
        "depth_pk",
        "queue_p50",
        "queue_p99",
        "comp_p50(us)",
        "comp_p99(us)",
        "thrpt(sps)"
    );
    let sweep = [
        ServeConfig {
            max_batch: 1,
            max_wait_ticks: 0,
        },
        ServeConfig {
            max_batch: 4,
            max_wait_ticks: 2,
        },
        ServeConfig {
            max_batch: 16,
            max_wait_ticks: 8,
        },
    ];
    let mut unbatched_sps = 0.0f64;
    let mut best_sps = 0.0f64;
    for pattern in [Pattern::Uniform, Pattern::Bursty] {
        for cfg in sweep {
            let s = drive(pattern, cfg, n, &store);
            assert_eq!(s.completed, n, "driver lost requests");
            print_row(pattern.label(), cfg, &s);
            if pattern == Pattern::Bursty && cfg.max_batch == 1 {
                unbatched_sps = s.throughput_sps;
            }
            best_sps = best_sps.max(s.throughput_sps);
        }
    }
    if unbatched_sps > 0.0 {
        println!(
            "batching speedup (bursty, best vs max_batch=1): {:.2}x",
            best_sps / unbatched_sps
        );
    }
    // With POSIT_OBS=1 the whole run has been feeding the global metric
    // registry: kernel-path counters from every GEMM, quantization-edge
    // health, codec bytes from the checkpoint round trip, and the serve
    // queue/batch metrics. Dump it — and export NDJSON when asked.
    if posit_obs::enabled() {
        let snap = posit_obs::Registry::global().snapshot();
        println!("\n== posit-obs registry ==");
        print!("{}", snap.to_table());
        if let Some(path) = std::env::var_os("POSIT_OBS_NDJSON") {
            std::fs::write(&path, snap.to_ndjson()).expect("write obs NDJSON export");
        }
    }
}
