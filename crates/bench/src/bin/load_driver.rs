//! Synthetic load driver for the `posit-serve` inference server.
//!
//! Builds a calibrated quantized LeNet, checkpoints it, restores it into
//! an [`InferenceServer`] (the store path is the server's only loading
//! path), then replays synthetic single-sample traffic — uniform and
//! bursty arrival patterns from the in-tree xoshiro PRNG — against a
//! sweep of batcher configurations, printing a latency/throughput table
//! (recorded in EXPERIMENTS.md).
//!
//! Overload behavior is part of the table: every row reports shed-rate
//! (admission rejections / offered) and deadline-miss-rate (queue
//! expiries / admitted) next to the latency columns, and a final storm
//! section drives a seeded adversarial [`TrafficPlan`] against a
//! rate-capped, deadline-bounded config so the shedding columns are
//! nonzero somewhere. The model store sits behind a seeded transient
//! fault plan and the retry layer, so the run also reports how much
//! retry traffic the checkpoint loads absorbed.
//!
//! Usage: `cargo run --release -p posit-bench --bin load_driver [--quick]`
//!
//! Queue latency is in deterministic virtual-time ticks (one tick per
//! driver loop iteration); compute latency and throughput are wall-clock.

use posit_bench::Scale;
use posit_fault::{FaultConfig, FaultPlan, FaultStore, TrafficConfig, TrafficPlan};
use posit_nn::{checkpoint, Layer};
use posit_serve::{InferenceServer, Rejected, ServeConfig, ServeError, ServeStats, ServedModel};
use posit_store::{MemoryStore, RetryPolicy, RetryStore, Store};
use posit_tensor::rng::Prng;
use posit_tensor::Tensor;
use posit_train::{ComputeBackend, MasterWeights, Phase, QuantBuilder, QuantSpec};

const SIDE: usize = 16;
const CLASSES: usize = 10;

/// The model store: transient faults at a pinned seed, absorbed by the
/// retry layer — checkpoint loads exercise the full failure path.
type ModelStore = RetryStore<FaultStore<MemoryStore>>;

fn spec() -> QuantSpec {
    QuantSpec::cifar_paper()
        .with_backend(ComputeBackend::PositQuire)
        .with_master(MasterWeights::Posit)
}

/// Calibrate a random LeNet, round-trip it through a v2 checkpoint, and
/// serve it from the store.
fn server(cfg: ServeConfig, store: &dyn Store) -> InferenceServer {
    let mut rng = Prng::seed(1234);
    let mut qb = QuantBuilder::new(spec());
    let control = qb.control();
    let net = posit_models::lenet(&mut qb, 3, SIDE, CLASSES, &mut rng);
    InferenceServer::from_store(
        ServedModel::quantized(net, control, spec()),
        store,
        "load-driver-model",
        &[3, SIDE, SIDE],
        cfg,
    )
    .expect("serve from checkpoint")
}

/// Build the checkpoint the sweep serves from: calibrated scales + posit
/// weights, written through the checkpoint façade.
fn checkpoint_model(store: &dyn Store) {
    let mut rng = Prng::seed(1234);
    let mut qb = QuantBuilder::new(spec());
    let control = qb.control();
    let mut net = posit_models::lenet(&mut qb, 3, SIDE, CLASSES, &mut rng);
    let mut cal_rng = Prng::seed(4321);
    let cal = Tensor::rand_normal(&[8, 3, SIDE, SIDE], 0.0, 1.0, &mut cal_rng);
    control.set_phase(Phase::Calibrate);
    let _ = net.forward(&cal, false);
    control.set_phase(Phase::Posit);
    checkpoint::write(
        &net,
        checkpoint::Sink::Store {
            store,
            prefix: "load-driver-model",
        },
        checkpoint::Version::V2,
    )
    .expect("checkpoint the served model");
}

fn sample(i: u64) -> Tensor {
    let mut rng = Prng::seed(0xD21 ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    Tensor::rand_normal(&[3, SIDE, SIDE], 0.0, 1.0, &mut rng)
}

/// How many requests arrive at each driver tick.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pattern {
    /// One request per tick, like a paced client.
    Uniform,
    /// Poisson-ish bursts: most ticks idle, occasional clumps of 1–8.
    Bursty,
}

impl Pattern {
    fn label(self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Bursty => "bursty",
        }
    }

    fn arrivals(self, rng: &mut Prng) -> usize {
        match self {
            Pattern::Uniform => 1,
            Pattern::Bursty => {
                if rng.uniform(0.0, 1.0) < 0.25 {
                    1 + (rng.uniform(0.0, 8.0) as usize)
                } else {
                    0
                }
            }
        }
    }
}

/// Offer `arrivals` to the server, tolerating admission rejections.
fn offer(srv: &mut InferenceServer, next: &mut u64, n: u64, arrivals: usize) {
    for _ in 0..arrivals {
        if *next == n {
            return;
        }
        match srv.submit(&sample(*next)) {
            Ok(_) | Err(ServeError::Rejected(Rejected::Overloaded)) => {}
            Err(other) => panic!("request {next}: {other}"),
        }
        *next += 1;
    }
}

/// Drive `n` offered requests through a fresh server: per tick, submit
/// the pattern's arrivals, advance the virtual clock. Every admitted
/// request must resolve — served or shed on deadline — by flush time.
fn drive(pattern: Pattern, cfg: ServeConfig, n: u64, store: &dyn Store) -> ServeStats {
    let mut srv = server(cfg, store);
    let mut rng = Prng::seed(77);
    let mut next = 0u64;
    while next < n {
        offer(&mut srv, &mut next, n, pattern.arrivals(&mut rng));
        srv.tick().expect("tick");
    }
    srv.flush_all().expect("flush");
    let s = srv.stats();
    assert_eq!(s.submitted, s.completed + s.shed_deadline, "lost requests");
    assert_eq!(n, s.submitted + s.shed_overload, "lost submissions");
    s
}

/// Replay an adversarial seeded storm against a rate-capped server:
/// bursts above the service rate with stalls, bounded queue, deadlines.
fn storm(seed: u64, cfg: ServeConfig, n: u64, store: &dyn Store) -> ServeStats {
    let mut srv = server(cfg, store);
    let mut plan = TrafficPlan::seeded(
        seed,
        TrafficConfig {
            max_burst: 6,
            stall: 0.3,
            idle: 0.2,
            idle_ticks: 3,
        },
    );
    let mut next = 0u64;
    while next < n {
        let e = plan.next_event();
        offer(&mut srv, &mut next, n, e.arrivals);
        for _ in 0..e.ticks {
            srv.tick().expect("tick");
        }
    }
    srv.flush_all().expect("flush");
    let s = srv.stats();
    assert_eq!(s.submitted, s.completed + s.shed_deadline, "lost requests");
    assert_eq!(n, s.submitted + s.shed_overload, "lost submissions");
    s
}

fn print_row(pattern: &str, cfg: ServeConfig, n: u64, s: &ServeStats) {
    let shed_rate = 100.0 * s.shed_overload as f64 / n as f64;
    let miss_rate = if s.submitted > 0 {
        100.0 * s.shed_deadline as f64 / s.submitted as f64
    } else {
        0.0
    };
    println!(
        "{pattern:<8} {:>9} {:>5} {:>8} {:>7.2} {:>6} {:>6} {:>7} {:>8} {:>10} {:>10} {:>13.1} {:>13.1} {:>11.0} {:>6.1} {:>7.1}",
        cfg.max_batch,
        cfg.max_wait_ticks,
        s.batches,
        s.mean_batch,
        s.batch_p50,
        s.batch_p99,
        s.full_batches,
        s.queue_depth_peak,
        s.queue_p50_ticks,
        s.queue_p99_ticks,
        s.compute_p50_ns as f64 / 1e3,
        s.compute_p99_ns as f64 / 1e3,
        s.throughput_sps,
        shed_rate,
        miss_rate,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u64 = match Scale::from_args(&args) {
        Scale::Quick => 64,
        Scale::Full => 400,
    };
    // Every checkpoint load below runs against a store that fails 5% of
    // operations transiently (pinned seed), behind the retry layer.
    let store: ModelStore = RetryStore::new(
        FaultStore::new(
            MemoryStore::new(),
            FaultPlan::seeded(9, FaultConfig::transient_only(0.05, 2)),
        ),
        RetryPolicy::immediate(6),
    );
    checkpoint_model(&store);

    println!("== serve load driver: LeNet 3x{SIDE}x{SIDE}, posit-quire, {n} requests ==");
    println!(
        "{:<8} {:>9} {:>5} {:>8} {:>7} {:>6} {:>6} {:>7} {:>8} {:>10} {:>10} {:>13} {:>13} {:>11} {:>6} {:>7}",
        "pattern",
        "max_batch",
        "wait",
        "batches",
        "mean_b",
        "b_p50",
        "b_p99",
        "full_b",
        "depth_pk",
        "queue_p50",
        "queue_p99",
        "comp_p50(us)",
        "comp_p99(us)",
        "thrpt(sps)",
        "shed%",
        "dlmiss%"
    );
    let sweep = [
        ServeConfig {
            max_batch: 1,
            max_wait_ticks: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            max_batch: 4,
            max_wait_ticks: 2,
            ..ServeConfig::default()
        },
        ServeConfig {
            max_batch: 16,
            max_wait_ticks: 8,
            ..ServeConfig::default()
        },
    ];
    let mut unbatched_sps = 0.0f64;
    let mut best_sps = 0.0f64;
    for pattern in [Pattern::Uniform, Pattern::Bursty] {
        for cfg in sweep {
            let s = drive(pattern, cfg, n, &store);
            assert_eq!(s.completed, n, "unbounded rows must serve everything");
            print_row(pattern.label(), cfg, n, &s);
            if pattern == Pattern::Bursty && cfg.max_batch == 1 {
                unbatched_sps = s.throughput_sps;
            }
            best_sps = best_sps.max(s.throughput_sps);
        }
    }
    // The storm row: arrivals beyond the capped service rate, so the
    // shedding columns are exercised (typed rejections, never panics).
    let storm_cfg = ServeConfig {
        max_batch: 2,
        max_wait_ticks: 1,
        max_queue: 8,
        deadline_ticks: Some(3),
        batches_per_tick: Some(1),
    };
    let s = storm(42, storm_cfg, n, &store);
    print_row("storm", storm_cfg, n, &s);
    if unbatched_sps > 0.0 {
        println!(
            "batching speedup (bursty, best vs max_batch=1): {:.2}x",
            best_sps / unbatched_sps
        );
    }
    let rs = store.stats();
    let fs = store.inner().stats();
    println!(
        "model-store retries (seeded 5% transient faults): store_ops={} injected={} faulted_ops={} retries={} exhausted={}",
        fs.ops,
        fs.total(),
        rs.faulted_ops,
        rs.retries,
        rs.exhausted
    );
    assert_eq!(rs.exhausted, 0, "retry budget must absorb the fault plan");
    // With POSIT_OBS=1 the whole run has been feeding the global metric
    // registry: kernel-path counters from every GEMM, quantization-edge
    // health, codec bytes from the checkpoint round trip, and the serve
    // queue/batch metrics. Dump it — and export NDJSON when asked.
    if posit_obs::enabled() {
        let snap = posit_obs::Registry::global().snapshot();
        println!("\n== posit-obs registry ==");
        print!("{}", snap.to_table());
        if let Some(path) = std::env::var_os("POSIT_OBS_NDJSON") {
            std::fs::write(&path, snap.to_ndjson()).expect("write obs NDJSON export");
        }
    }
}
