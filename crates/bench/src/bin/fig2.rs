//! Regenerates **Fig. 2** of the paper: histograms and log-domain
//! distributions of a CONV-layer weight (`conv1.weight`) and a BN-layer
//! weight (`layer4.0.bn1.weight`) across training epochs.
//!
//! The paper's observation, which this reproduces: CONV weight
//! distributions stay roughly stationary, while BN weights shift sharply in
//! the first epochs — the motivation for FP32 warm-up training.
//!
//! ```text
//! cargo run --release -p posit-bench --bin fig2 [-- --quick]
//! ```

use posit_bench::{CifarExperiment, Scale};
use posit_train::stats::HistogramRecorder;
use posit_train::{RunOptions, Trainer};

const PARAMS: [&str; 2] = ["conv1.weight", "layer4.0.bn1.weight"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let exp = CifarExperiment::new(scale);
    let epochs = exp.config.epochs;
    let hist_epochs: Vec<usize> = [0usize, 1, 2, epochs / 2, epochs - 1]
        .into_iter()
        .filter(|&e| e < epochs)
        .collect();
    let config = exp.config.clone().with_histograms(hist_epochs.clone());
    let mut trainer = Trainer::resnet(&config);

    // Snapshot the *initialization* (the paper's epoch-0 panel): BN γ is a
    // point mass at 1.0 here, which is what makes its early change steep.
    let mut init_rec = HistogramRecorder::new(PARAMS.iter().map(|s| s.to_string()).collect(), 32);
    init_rec.capture(trainer.net(), 0);

    let report = trainer
        .run(RunOptions::new(&exp.train, &exp.test, &config))
        .unwrap();

    for param in PARAMS {
        println!("==========================================================");
        println!("Fig. 2 panels for {param}");
        println!("==========================================================");
        let init = &init_rec.for_param(param)[0];
        println!(
            "--- init | mean {:+.4} std {:.4} (n={}) ---",
            init.values.mean, init.values.std, init.values.n
        );
        print!("{}", init.values.render(40));
        let mut early_std = init.values.std;
        let mut final_std = init.values.std;
        let init_std = init.values.std;
        for snap in report.histograms.for_param(param) {
            println!(
                "--- after epoch {} | mean {:+.4} std {:.4} (n={}) ---",
                snap.epoch, snap.values.mean, snap.values.std, snap.values.n
            );
            println!("histogram (value domain):");
            print!("{}", snap.values.render(40));
            println!("distribution (log2 |w| domain — the posit code-space view):");
            print!("{}", snap.log_magnitudes.render(40));
            if snap.epoch <= 2 {
                early_std = snap.values.std;
            }
            final_std = snap.values.std;
        }
        // The paper's qualitative claim, quantified: how much of the total
        // distribution movement happens in the first epochs?
        let early = (early_std - init_std).abs();
        let total = (final_std - init_std).abs().max(1e-9);
        println!(
            "std movement: init {:.4} -> epoch2 {:.4} -> end {:.4}  (early fraction {:.0}%)\n",
            init_std,
            early_std,
            final_std,
            100.0 * early / total
        );
    }
}
