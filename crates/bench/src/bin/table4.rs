//! Regenerates **Table IV** of the paper: delay of the original \[6\] vs the
//! optimized encoder/decoder for posit(8,0), (16,1), (32,3), plus the
//! power/area of the optimized circuits — all under the 28 nm-class unit-
//! gate cost model (DESIGN.md §2).
//!
//! ```text
//! cargo run -p posit-bench --bin table4
//! ```

use posit_hw::cost::{format_table4, full_inventory, CostModel};

fn main() {
    let model = CostModel::tsmc28();
    println!("{}", format_table4(&model));
    println!("paper reference (measured, TSMC 28nm Design Compiler):");
    println!("                          posit(8,0) posit(16,1) posit(32,3)");
    println!("[6] delay(ns) encoder           0.20        0.29        0.35");
    println!("[6] delay(ns) decoder           0.20        0.28        0.34");
    println!("Ours delay(ns) encoder          0.13        0.18        0.23");
    println!("Ours delay(ns) decoder          0.14        0.21        0.29");
    println!("Ours power(mW) encoder          0.21        0.44        0.59");
    println!("Ours power(mW) decoder          0.27        0.45        0.66");
    println!("Ours area(um2) encoder           137         295         540");
    println!("Ours area(um2) decoder           201         504         960");
    println!();
    println!("full circuit inventory:");
    for r in full_inventory(&model) {
        println!("  {r}");
    }
}
