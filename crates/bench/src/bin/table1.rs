//! Regenerates **Table I** of the paper: the detail structure of the
//! positive values of a (5,1) posit, plus the Fig. 1 field layouts.
//!
//! ```text
//! cargo run -p posit-bench --bin table1 [-- n es]
//! ```

use posit::{tables, PositFormat};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (n, es) = if args.len() >= 2 {
        (
            args[0].parse().expect("n must be an integer"),
            args[1].parse().expect("es must be an integer"),
        )
    } else {
        (5u32, 1u32)
    };
    let fmt = PositFormat::new(n, es).expect("valid posit format");
    println!("{}", tables::format_table(&fmt));
    println!(
        "useed = 2^(2^es) = {}, maxpos = useed^(n-2) = {}, minpos = useed^(2-n) = {}",
        fmt.useed(),
        fmt.maxpos(),
        fmt.minpos()
    );
    println!();
    println!("Fig. 1 field layouts by effective exponent (scale):");
    println!(
        "{:>7} {:>3} {:>12} {:>13} {:>13}",
        "scale", "k", "regime bits", "exponent bits", "fraction bits"
    );
    let mut scale = fmt.min_scale();
    while scale <= fmt.max_scale() {
        let l = fmt.field_layout(scale);
        println!(
            "{:>7} {:>3} {:>12} {:>13} {:>13}",
            scale, l.k, l.regime_bits, l.exponent_bits, l.fraction_bits
        );
        scale += fmt.useed_log2();
    }
}
