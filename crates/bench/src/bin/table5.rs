//! Regenerates **Table V** of the paper: power and area of the posit MAC
//! (Fig. 4, with the optimized encoder/decoder) against an FP32 MAC at the
//! 750 MHz timing constraint, under the unit-gate cost model.
//!
//! ```text
//! cargo run -p posit-bench --bin table5
//! ```

use posit::{PositFormat, Rounding};
use posit_hw::cost::{format_table5, CostModel};
use posit_hw::mac::{Generation, PositMac};

fn main() {
    let model = CostModel::tsmc28();
    println!("{}", format_table5(&model));
    println!("paper reference (measured):");
    println!("              Power(mW)   Area(um2)");
    println!("FP32               2.52        4322");
    println!("posit(8,1)         0.45        1208");
    println!("posit(8,2)         0.35        1032");
    println!("posit(16,1)        1.77        4079");
    println!("posit(16,2)        1.60        3897");
    println!();

    // Functional spot check in the same binary: the modelled MAC is the
    // real circuit, so exercise it.
    let fmt = PositFormat::of(16, 1);
    let mac = PositMac::with_generation(fmt, Generation::Optimized);
    let a = fmt.from_f64(1.25, Rounding::NearestEven);
    let b = fmt.from_f64(-3.0, Rounding::NearestEven);
    let c = fmt.from_f64(10.0, Rounding::NearestEven);
    println!(
        "functional check: posit(16,1) MAC(1.25, -3.0, +10.0) = {}",
        fmt.to_f64(mac.mac(a, b, c))
    );
    println!(
        "matches software fused-RTZ: {}",
        mac.mac(a, b, c) == fmt.fused_mul_add_with(a, b, c, Rounding::ToZero, 0)
    );
}
