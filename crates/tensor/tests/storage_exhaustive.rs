//! Exhaustive cross-check of the packed storage transitions against the
//! reference quantizer: `to_posit → to_f32` must be bit-identical to
//! `posit::quant` on every code point of the 8-bit formats, including NaR
//! propagation, and stable (idempotent) under re-encoding.
//!
//! This is the tier-1 guarantee behind the storage refactor: replacing the
//! f32 `P(·)` round trip with a packed encode changes *where* the bits
//! live, never *which* bits they are.

use posit::{quant, PositFormat, Rounding};
use posit_tensor::Tensor;

/// Every value representable in posit(8,0) survives the storage round trip
/// with its exact code word, under both deterministic rounding modes.
#[test]
fn p8e0_roundtrip_is_bit_identical_on_every_code_point() {
    let fmt = PositFormat::of(8, 0);
    for mode in [Rounding::NearestEven, Rounding::ToZero] {
        for code in 0..fmt.code_count() {
            let v = fmt.to_f32(code);
            let t = Tensor::from_vec(vec![v], &[1]);
            let p = t.to_posit(fmt, 0, mode);
            let (bits, pf, pe) = p.posit_bits().expect("must be posit-domain");
            assert_eq!(pf, fmt);
            assert_eq!(pe, 0);
            assert_eq!(
                bits.get(0),
                code,
                "code {code:#04x} (value {v}) did not survive encode under {mode:?}"
            );
            let back = p.to_f32();
            let want = quant::quantize_f32(&fmt, v, mode);
            if code == fmt.nar_bits() {
                assert!(v.is_nan(), "NaR must decode to NaN");
                assert!(back.data()[0].is_nan(), "NaR lost in round trip");
                assert!(want.is_nan(), "reference quantizer disagrees on NaR");
            } else {
                assert_eq!(
                    back.data()[0],
                    want,
                    "decode of code {code:#04x} disagrees with posit::quant"
                );
            }
        }
    }
}

/// Off-grid inputs: `to_posit → to_f32` equals the reference quantizer on
/// a dense sweep across (8,0)'s whole dynamic range (both rounding modes),
/// so the packed encode is the same operator, not merely the same fixed
/// points.
#[test]
fn p8e0_matches_reference_quantizer_on_off_grid_sweep() {
    let fmt = PositFormat::of(8, 0);
    for mode in [Rounding::NearestEven, Rounding::ToZero] {
        let xs: Vec<f32> = (-4000..4000).map(|i| i as f32 * 0.037).collect();
        let t = Tensor::from_vec(xs.clone(), &[xs.len()]);
        let round_trip = t.to_posit(fmt, 0, mode).to_f32();
        for (&x, &got) in xs.iter().zip(round_trip.data()) {
            let want = quant::quantize_f32(&fmt, x, mode);
            assert_eq!(got, want, "x={x} under {mode:?}");
        }
    }
}

/// The other 8-bit formats of Table III behave identically (the paper's
/// CONV grids): every code point survives, NaR propagates.
#[test]
fn all_8bit_formats_roundtrip_every_code_point() {
    for es in 0..=2u32 {
        let fmt = PositFormat::of(8, es);
        for code in 0..fmt.code_count() {
            let v = fmt.to_f32(code);
            let p = Tensor::from_vec(vec![v], &[1]).to_posit(fmt, 0, Rounding::NearestEven);
            assert_eq!(
                p.posit_bits().unwrap().0.get(0),
                code,
                "(8,{es}) {code:#04x}"
            );
        }
    }
}

/// NaR propagation through a *scaled* plane: the scale shift applies only
/// to finite values; NaN stays NaR stays NaN at any scale exponent.
#[test]
fn nar_propagates_at_every_scale_exponent() {
    let fmt = PositFormat::of(8, 0);
    for e in [-6i32, 0, 6] {
        let t = Tensor::from_vec(vec![f32::NAN, 1.0, -1.0], &[3]);
        let p = t.to_posit(fmt, e, Rounding::ToZero);
        let (bits, ..) = p.posit_bits().unwrap();
        assert_eq!(bits.get(0), fmt.nar_bits(), "e={e}");
        let back = p.to_f32();
        assert!(back.data()[0].is_nan(), "e={e}");
        assert_eq!(back.data()[1], 1.0, "e={e}");
        assert_eq!(back.data()[2], -1.0, "e={e}");
    }
}

/// Re-encoding a decoded plane is the identity on bits (the grid is a
/// fixed point of the transition pair) — for every (8,0) code point and
/// every deterministic mode.
#[test]
fn reencoding_is_idempotent_on_the_grid() {
    let fmt = PositFormat::of(8, 0);
    let codes: Vec<u64> = (0..fmt.code_count()).collect();
    let values: Vec<f32> = codes.iter().map(|&c| fmt.to_f32(c)).collect();
    let t = Tensor::from_vec(values, &[codes.len()]);
    for mode in [Rounding::NearestEven, Rounding::ToZero] {
        let once = t.to_posit(fmt, 0, mode);
        let twice = once.to_f32().to_posit(fmt, 0, mode);
        let (b1, ..) = once.posit_bits().unwrap();
        let (b2, ..) = twice.posit_bits().unwrap();
        assert_eq!(
            b1.iter().collect::<Vec<_>>(),
            b2.iter().collect::<Vec<_>>(),
            "{mode:?}"
        );
    }
}
