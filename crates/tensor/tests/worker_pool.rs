//! Worker-pool dispatch exercised with a forced thread budget.
//!
//! CI containers often expose a single hardware thread, on which every
//! parallel region takes the serial fast path and the pool never spawns.
//! This test runs in its own process and pins `POSIT_TENSOR_THREADS=4`
//! *before* the budget is first read, so the channel dispatch, the strided
//! lane split and the latch all actually execute — and must be
//! bit-identical to a serial run of the same kernels.
//!
//! Everything lives in one `#[test]` so the environment variable is set
//! exactly once, before any pool touch.

use posit::{PositFormat, Rounding};
use posit_tensor::{gemm, par_map_indexed, serial_scope, Backend, Operand, PositGemm};

#[test]
fn pooled_kernels_match_serial_bit_for_bit() {
    std::env::set_var("POSIT_TENSOR_THREADS", "4");

    // f32 GEMM, big enough to cross the dispatch thresholds.
    let (m, k, n) = (96, 48, 64);
    let a: Vec<f32> = (0..m * k)
        .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.125)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i * 5 % 19) as f32 - 9.0) * 0.25)
        .collect();
    let mut c_pool = vec![0.0f32; m * n];
    gemm::gemm(m, k, n, &a, &b, &mut c_pool);
    let mut c_serial = vec![0.0f32; m * n];
    serial_scope(|| gemm::gemm(m, k, n, &a, &b, &mut c_serial));
    assert_eq!(c_pool, c_serial, "f32 gemm pool vs serial");

    // Posit quire GEMM through the same pooled row split.
    let fmt = PositFormat::of(8, 1);
    let kernel = PositGemm::new(fmt, Rounding::NearestEven);
    let pa = kernel.encode_plane(&a);
    let pb = kernel.encode_plane(&b);
    let mut q_pool = vec![0.0f32; m * n];
    kernel.gemm(m, k, n, &pa, &pb, &mut q_pool);
    let mut q_serial = vec![0.0f32; m * n];
    serial_scope(|| kernel.gemm(m, k, n, &pa, &pb, &mut q_serial));
    assert_eq!(q_pool, q_serial, "posit gemm pool vs serial");
    // And repeated pooled runs are deterministic.
    let mut q_again = vec![0.0f32; m * n];
    kernel.gemm(m, k, n, &pa, &pb, &mut q_again);
    assert_eq!(q_pool, q_again, "pooled run determinism");

    // Thin-lane fallback: an fc1-shaped GEMM (m = 32, k = 256, n = 128)
    // clears the total-work gate exactly, but on this 4-thread budget it
    // would split into two 16-row lanes of 2^19 MACs each — too little
    // work per lane to amortize dispatch. `planned_lanes` must keep it
    // serial, while a 128-row problem with the same per-row work still
    // fans out to all four lanes.
    assert_eq!(
        gemm::planned_lanes(32, 32 * 256 * 128),
        1,
        "fc1 shape serial"
    );
    assert_eq!(
        gemm::planned_lanes(128, 128 * 256 * 128),
        4,
        "wide shape parallel"
    );
    // The serial fallback is still bit-identical to a forced-serial run.
    let (mf, kf, nf) = (32, 256, 128);
    let af: Vec<f32> = (0..mf * kf)
        .map(|i| ((i * 29 % 41) as f32 - 20.0) * 0.0625)
        .collect();
    let bf: Vec<f32> = (0..kf * nf)
        .map(|i| ((i * 23 % 37) as f32 - 18.0) * 0.125)
        .collect();
    let kern16 = PositGemm::new(PositFormat::of(16, 1), Rounding::NearestEven);
    let paf = kern16.encode_plane(&af);
    let pbf = kern16.encode_plane(&bf);
    let mut qf_pool = vec![0.0f32; mf * nf];
    kern16.gemm(mf, kf, nf, &paf, &pbf, &mut qf_pool);
    let mut qf_serial = vec![0.0f32; mf * nf];
    serial_scope(|| kern16.gemm(mf, kf, nf, &paf, &pbf, &mut qf_serial));
    assert_eq!(qf_pool, qf_serial, "fc1 shape pool vs serial");

    // Uneven lane split: row counts that do not divide by the 4-lane
    // budget (37 = 9·4+1) and a 1-row degenerate batch (fewer rows than
    // lanes, so some lanes receive no work). Pool ≡ serial either way.
    for (mu, ku, nu) in [(37, 23, 29), (1, 48, 64)] {
        let au: Vec<f32> = (0..mu * ku)
            .map(|i| ((i * 13 % 31) as f32 - 15.0) * 0.0625)
            .collect();
        let bu: Vec<f32> = (0..ku * nu)
            .map(|i| ((i * 17 % 29) as f32 - 14.0) * 0.125)
            .collect();
        let mut cu_pool = vec![0.0f32; mu * nu];
        gemm::gemm(mu, ku, nu, &au, &bu, &mut cu_pool);
        let mut cu_serial = vec![0.0f32; mu * nu];
        serial_scope(|| gemm::gemm(mu, ku, nu, &au, &bu, &mut cu_serial));
        assert_eq!(cu_pool, cu_serial, "uneven f32 gemm {mu}x{ku}x{nu}");

        let pau = kernel.encode_plane(&au);
        let pbu = kernel.encode_plane(&bu);
        let mut qu_pool = vec![0.0f32; mu * nu];
        kernel.gemm(mu, ku, nu, &pau, &pbu, &mut qu_pool);
        let mut qu_serial = vec![0.0f32; mu * nu];
        serial_scope(|| kernel.gemm(mu, ku, nu, &pau, &pbu, &mut qu_serial));
        assert_eq!(qu_pool, qu_serial, "uneven posit gemm {mu}x{ku}x{nu}");
    }

    // Shard-protocol gradient buffers on the pooled backend: a 37-sample
    // batch (not divisible by the lane count) split unevenly, and the
    // 1-shard degenerate case, must merge to the serial buffer's rounded
    // grads bit-for-bit.
    let bwd = Backend::PositQuire {
        fmt: PositFormat::of(16, 1),
        rounding: Rounding::NearestEven,
    };
    let (batch, o, kin) = (37, 5, 7);
    let dy: Vec<f32> = (0..batch * o)
        .map(|i| ((i * 3 % 17) as f32 - 8.0) * 0.5)
        .collect();
    let xs: Vec<f32> = (0..batch * kin)
        .map(|i| ((i * 11 % 13) as f32 - 6.0) * 0.25)
        .collect();
    let dyp = bwd.quire_operand_plane(Operand::F32(&dy)).unwrap();
    let xp = bwd.quire_operand_plane(Operand::F32(&xs)).unwrap();
    let margin = dyp.quire_margin() + xp.quire_margin();
    let mut serial_buf = bwd.grad_quire_buf(o * kin, margin, batch).unwrap();
    serial_buf.accumulate_at_b(o, batch, kin, &dyp, &xp);
    let mut want = vec![0.0f32; o * kin];
    serial_buf.round_into(&mut want);
    for splits in [vec![batch], vec![19, 18], vec![9, 9, 9, 10], vec![36, 1]] {
        let mut shards = Vec::new();
        let mut start = 0usize;
        for &rows in &splits {
            let end = start + rows;
            let dys = bwd
                .quire_operand_plane(Operand::F32(&dy[start * o..end * o]))
                .unwrap();
            let xss = bwd
                .quire_operand_plane(Operand::F32(&xs[start * kin..end * kin]))
                .unwrap();
            let mut buf = bwd.grad_quire_buf(o * kin, margin, batch).unwrap();
            buf.accumulate_at_b(o, rows, kin, &dys, &xss);
            shards.push(buf);
            start = end;
        }
        let mut total = shards.remove(0);
        for s in &shards {
            total.merge_from(s);
        }
        let mut got = vec![0.0f32; o * kin];
        total.round_into(&mut got);
        let bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, want_bits, "shard split {splits:?}");
    }

    // par_map_indexed across the pool preserves order and runs every item
    // exactly once.
    let items: Vec<usize> = (0..1001).collect();
    let out = par_map_indexed(&items, 2, |i, &x| {
        assert_eq!(i, x);
        x * 3 + 1
    });
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i * 3 + 1);
    }

    // A panicking task must quiesce the region, report, and leave the pool
    // serviceable.
    let result = std::panic::catch_unwind(|| {
        par_map_indexed(&items, 2, |_, &x| {
            if x == 500 {
                panic!("boom");
            }
            x
        })
    });
    assert!(result.is_err(), "panic must propagate out of the region");
    let out = par_map_indexed(&items, 2, |_, &x| x + 1);
    assert_eq!(out.len(), items.len(), "pool survives a panicked region");
}
