//! Worker-pool dispatch exercised with a forced thread budget.
//!
//! CI containers often expose a single hardware thread, on which every
//! parallel region takes the serial fast path and the pool never spawns.
//! This test runs in its own process and pins `POSIT_TENSOR_THREADS=4`
//! *before* the budget is first read, so the channel dispatch, the strided
//! lane split and the latch all actually execute — and must be
//! bit-identical to a serial run of the same kernels.
//!
//! Everything lives in one `#[test]` so the environment variable is set
//! exactly once, before any pool touch.

use posit::{PositFormat, Rounding};
use posit_tensor::{gemm, par_map_indexed, serial_scope, PositGemm};

#[test]
fn pooled_kernels_match_serial_bit_for_bit() {
    std::env::set_var("POSIT_TENSOR_THREADS", "4");

    // f32 GEMM, big enough to cross the dispatch thresholds.
    let (m, k, n) = (96, 48, 64);
    let a: Vec<f32> = (0..m * k)
        .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.125)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i * 5 % 19) as f32 - 9.0) * 0.25)
        .collect();
    let mut c_pool = vec![0.0f32; m * n];
    gemm::gemm(m, k, n, &a, &b, &mut c_pool);
    let mut c_serial = vec![0.0f32; m * n];
    serial_scope(|| gemm::gemm(m, k, n, &a, &b, &mut c_serial));
    assert_eq!(c_pool, c_serial, "f32 gemm pool vs serial");

    // Posit quire GEMM through the same pooled row split.
    let fmt = PositFormat::of(8, 1);
    let kernel = PositGemm::new(fmt, Rounding::NearestEven);
    let pa = kernel.encode_plane(&a);
    let pb = kernel.encode_plane(&b);
    let mut q_pool = vec![0.0f32; m * n];
    kernel.gemm(m, k, n, &pa, &pb, &mut q_pool);
    let mut q_serial = vec![0.0f32; m * n];
    serial_scope(|| kernel.gemm(m, k, n, &pa, &pb, &mut q_serial));
    assert_eq!(q_pool, q_serial, "posit gemm pool vs serial");
    // And repeated pooled runs are deterministic.
    let mut q_again = vec![0.0f32; m * n];
    kernel.gemm(m, k, n, &pa, &pb, &mut q_again);
    assert_eq!(q_pool, q_again, "pooled run determinism");

    // par_map_indexed across the pool preserves order and runs every item
    // exactly once.
    let items: Vec<usize> = (0..1001).collect();
    let out = par_map_indexed(&items, 2, |i, &x| {
        assert_eq!(i, x);
        x * 3 + 1
    });
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i * 3 + 1);
    }

    // A panicking task must quiesce the region, report, and leave the pool
    // serviceable.
    let result = std::panic::catch_unwind(|| {
        par_map_indexed(&items, 2, |_, &x| {
            if x == 500 {
                panic!("boom");
            }
            x
        })
    });
    assert!(result.is_err(), "panic must propagate out of the region");
    let out = par_map_indexed(&items, 2, |_, &x| x + 1);
    assert_eq!(out.len(), items.len(), "pool survives a panicked region");
}
