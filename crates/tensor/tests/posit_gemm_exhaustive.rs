//! Exhaustive posit(8,0) cross-backend agreement: the `posit-quire` GEMM
//! must be bit-identical to a double-rounding-free reference built from
//! exact rational arithmetic (`posit::exact`), for every code-word pair and
//! for full-code-space dot products.

use posit::exact::{decode_ref, Rational, RefRounder};
use posit::{PositFormat, Rounding};
use posit_tensor::{PositGemm, PositPlane};

const FMT: PositFormat = PositFormat::of(8, 0);

/// Every finite code word of the format (zero included, NaR excluded).
fn finite_codes() -> Vec<u64> {
    (0..FMT.code_count())
        .filter(|&c| c != FMT.nar_bits())
        .collect()
}

fn exact(code: u64) -> Rational {
    decode_ref(&FMT, code).expect("finite code")
}

/// Reference: round an exact rational once, per the kernel's rounding mode.
fn round_ref(r: &RefRounder, x: &Rational, rounding: Rounding) -> u64 {
    match rounding {
        Rounding::NearestEven => r.nearest(x),
        Rounding::ToZero => r.toward_zero(x),
        Rounding::Stochastic => unreachable!("kernel never runs stochastic"),
    }
}

/// All pairwise products in one GEMM: `C[254,254] = A[254,1] · B[1,254]`.
/// Each output element is a single-product dot, so the kernel result must
/// equal the exactly-computed product rounded once.
#[test]
fn exhaustive_pairwise_products_match_exact_rationals() {
    let codes = finite_codes();
    let m = codes.len();
    let a = PositPlane::from_bits(FMT, &codes); // [m, 1]
    let b = PositPlane::from_bits(FMT, &codes); // [1, m]
    let rounder = RefRounder::new(FMT);
    for rounding in [Rounding::NearestEven, Rounding::ToZero] {
        let kernel = PositGemm::new(FMT, rounding);
        let mut c = vec![0.0f32; m * m];
        kernel.gemm(m, 1, m, &a, &b, &mut c);
        for (i, &ca) in codes.iter().enumerate() {
            for (j, &cb) in codes.iter().enumerate() {
                let prod = exact(ca).mul(&exact(cb));
                let want = FMT.to_f32(round_ref(&rounder, &prod, rounding));
                assert_eq!(c[i * m + j], want, "{rounding:?}: {ca:#04x} * {cb:#04x}");
            }
        }
    }
}

/// Full-code-space dot products: pair the exhaustive code list against
/// rotated copies of itself so every code meets many partners inside one
/// accumulation, and compare against exact rational summation rounded once
/// (the double-rounding-free reference).
#[test]
fn exhaustive_dot_products_match_exact_accumulation() {
    let codes = finite_codes();
    let k = codes.len();
    let rounder = RefRounder::new(FMT);
    for rotation in [1usize, 37, 101, 200] {
        let rotated: Vec<u64> = (0..k).map(|i| codes[(i + rotation) % k]).collect();
        let a = PositPlane::from_bits(FMT, &codes); // [1, k]
        let b = PositPlane::from_bits(FMT, &rotated); // [k, 1]
        let mut sum = Rational::ZERO;
        for (&ca, &cb) in codes.iter().zip(&rotated) {
            sum = sum.add(&exact(ca).mul(&exact(cb)));
        }
        for rounding in [Rounding::NearestEven, Rounding::ToZero] {
            let kernel = PositGemm::new(FMT, rounding);
            let mut c = vec![0.0f32; 1];
            kernel.gemm(1, k, 1, &a, &b, &mut c);
            let want = FMT.to_f32(round_ref(&rounder, &sum, rounding));
            assert_eq!(c[0], want, "rotation {rotation}, {rounding:?}");
        }
    }
}

/// The transposed kernel entry points must agree with the plain one on the
/// same exhaustive data (shape conventions only differ in storage order).
#[test]
fn transposed_kernels_bitwise_agree_on_exhaustive_data() {
    let codes = finite_codes();
    // Arrange the 254 codes as a 127×2 times 2×127 product.
    let (m, k, n) = (127usize, 2usize, 127usize);
    let a_codes = &codes[..m * k];
    let b_codes = &codes[..k * n];
    let kernel = PositGemm::new(FMT, Rounding::NearestEven);
    let a = PositPlane::from_bits(FMT, a_codes);
    let b = PositPlane::from_bits(FMT, b_codes);
    let mut want = vec![0.0f32; m * n];
    kernel.gemm(m, k, n, &a, &b, &mut want);

    let mut at_codes = vec![0u64; k * m];
    for i in 0..m {
        for kk in 0..k {
            at_codes[kk * m + i] = a_codes[i * k + kk];
        }
    }
    let a_t = PositPlane::from_bits(FMT, &at_codes);
    let mut c = vec![0.0f32; m * n];
    kernel.gemm_at_b(m, k, n, &a_t, &b, &mut c);
    assert_eq!(c, want, "gemm_at_b");

    let mut bt_codes = vec![0u64; n * k];
    for kk in 0..k {
        for j in 0..n {
            bt_codes[j * k + kk] = b_codes[kk * n + j];
        }
    }
    let b_t = PositPlane::from_bits(FMT, &bt_codes);
    let mut c = vec![0.0f32; m * n];
    kernel.gemm_a_bt(m, k, n, &a, &b_t, &mut c);
    assert_eq!(c, want, "gemm_a_bt");
}
