//! Exhaustive posit(8,·) cross-backend agreement: the `posit-quire` GEMM —
//! narrow-accumulator fast path, decode LUTs, register-blocked tiles and
//! all — must be bit-identical to a double-rounding-free reference built
//! from exact rational arithmetic (`posit::exact`), for every code-word
//! pair of every 8-bit training format and for full-code-space dot
//! products, plus a sampled posit(16,1) sweep and forced-fallback checks
//! that pin the wide-quire path against the fast path on identical inputs.

use posit::exact::{decode_ref, Rational, RefRounder};
use posit::{PositFormat, Rounding};
use posit_tensor::{KStripMode, PackedBits, PositGemm, PositPlane};

/// The 8-bit formats the paper trains with (es 0..=2).
const NARROW_FMTS: [PositFormat; 3] = [
    PositFormat::of(8, 0),
    PositFormat::of(8, 1),
    PositFormat::of(8, 2),
];

/// Every finite code word of a format (zero included, NaR excluded).
fn finite_codes(fmt: PositFormat) -> Vec<u64> {
    (0..fmt.code_count())
        .filter(|&c| c != fmt.nar_bits())
        .collect()
}

fn exact(fmt: PositFormat, code: u64) -> Rational {
    decode_ref(&fmt, code).expect("finite code")
}

/// Reference: round an exact rational once, per the kernel's rounding mode.
fn round_ref(r: &RefRounder, x: &Rational, rounding: Rounding) -> u64 {
    match rounding {
        Rounding::NearestEven => r.nearest(x),
        Rounding::ToZero => r.toward_zero(x),
        Rounding::Stochastic => unreachable!("kernel never runs stochastic"),
    }
}

/// All pairwise products in one GEMM: `C[254,254] = A[254,1] · B[1,254]`.
/// Each output element is a single-product dot, so the kernel result must
/// equal the exactly-computed product rounded once — for every 8-bit
/// training format, through the LUT decode and the narrow accumulator.
#[test]
fn exhaustive_pairwise_products_match_exact_rationals() {
    for fmt in NARROW_FMTS {
        let codes = finite_codes(fmt);
        let m = codes.len();
        let a = PositPlane::from_bits(fmt, &codes); // [m, 1]
        let b = PositPlane::from_bits(fmt, &codes); // [1, m]
        let rounder = RefRounder::new(fmt);
        for rounding in [Rounding::NearestEven, Rounding::ToZero] {
            let kernel = PositGemm::new(fmt, rounding);
            assert!(kernel.uses_narrow_path(0, 1), "{fmt} must run narrow");
            let mut c = vec![0.0f32; m * m];
            kernel.gemm(m, 1, m, &a, &b, &mut c);
            for (i, &ca) in codes.iter().enumerate() {
                for (j, &cb) in codes.iter().enumerate() {
                    let prod = exact(fmt, ca).mul(&exact(fmt, cb));
                    let want = fmt.to_f32(round_ref(&rounder, &prod, rounding));
                    assert_eq!(
                        c[i * m + j],
                        want,
                        "{fmt} {rounding:?}: {ca:#04x} * {cb:#04x}"
                    );
                }
            }
        }
    }
}

/// The forced-wide kernel must agree with the fast path on the same
/// exhaustive pairwise sweep: narrow accumulator, LUT store and tiling are
/// bit-transparent by construction, and this pins it on every code pair.
#[test]
fn exhaustive_pairwise_products_forced_wide_agrees() {
    for fmt in NARROW_FMTS {
        let codes = finite_codes(fmt);
        let m = codes.len();
        let a = PositPlane::from_bits(fmt, &codes);
        let b = PositPlane::from_bits(fmt, &codes);
        for rounding in [Rounding::NearestEven, Rounding::ToZero] {
            let fast = PositGemm::new(fmt, rounding);
            let wide = fast.wide_accumulator(true);
            assert!(!wide.uses_narrow_path(0, 1));
            let mut c_fast = vec![0.0f32; m * m];
            let mut c_wide = vec![0.0f32; m * m];
            fast.gemm(m, 1, m, &a, &b, &mut c_fast);
            wide.gemm(m, 1, m, &a, &b, &mut c_wide);
            // Bitwise: NaN-free data, so f32 equality is bit equality.
            assert_eq!(c_fast, c_wide, "{fmt} {rounding:?}");
        }
    }
}

/// Full-code-space dot products: pair the exhaustive code list against
/// rotated copies of itself so every code meets many partners inside one
/// accumulation, and compare against exact rational summation rounded once
/// (the double-rounding-free reference) — per 8-bit format.
#[test]
fn exhaustive_dot_products_match_exact_accumulation() {
    for fmt in NARROW_FMTS {
        // The i128 rational reference cannot hold an (8,2) sum that mixes
        // maxpos² (2^48) with minpos² (2^-96) — numerator × denominator
        // overflows — so for es=2 the dot sweep windows the codes to
        // |scale| ≤ 12. The kernel itself is pinned on the *full* (8,2)
        // code space by the pairwise-product sweep above.
        let codes: Vec<u64> = if fmt.es() >= 2 {
            finite_codes(fmt)
                .into_iter()
                .filter(|&c| {
                    let v = fmt.to_f64(c).abs();
                    v == 0.0 || (2f64.powi(-12)..=2f64.powi(12)).contains(&v)
                })
                .collect()
        } else {
            finite_codes(fmt)
        };
        let k = codes.len();
        let rounder = RefRounder::new(fmt);
        for rotation in [1usize, 37, 101, 200] {
            let rotated: Vec<u64> = (0..k).map(|i| codes[(i + rotation) % k]).collect();
            let a = PositPlane::from_bits(fmt, &codes); // [1, k]
            let b = PositPlane::from_bits(fmt, &rotated); // [k, 1]
            let mut sum = Rational::ZERO;
            for (&ca, &cb) in codes.iter().zip(&rotated) {
                sum = sum.add(&exact(fmt, ca).mul(&exact(fmt, cb)));
            }
            for rounding in [Rounding::NearestEven, Rounding::ToZero] {
                let kernel = PositGemm::new(fmt, rounding);
                let mut c = vec![0.0f32; 1];
                kernel.gemm(1, k, 1, &a, &b, &mut c);
                let want = fmt.to_f32(round_ref(&rounder, &sum, rounding));
                assert_eq!(c[0], want, "{fmt} rotation {rotation}, {rounding:?}");
            }
        }
    }
}

/// Sampled posit(16,1) sweep against the exact rational reference: random
/// code-word dots at several reduction depths, checking the narrow
/// accumulator's 16-bit regime (no LUT, 13 guard bits) and the wide
/// fallback on the same data.
#[test]
fn sampled_p16_dots_match_exact_rationals() {
    let fmt = PositFormat::of(16, 1);
    let rounder = RefRounder::new(fmt);
    let mut state = 0xD1CE_5EED_0BAD_F00Du64;
    let mut rand_code = |exclude_nar: bool| loop {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let c = (state >> 24) & fmt.mask();
        if !(exclude_nar && c == fmt.nar_bits()) {
            return c;
        }
    };
    for (trial, &k) in [1usize, 2, 7, 64, 333].iter().enumerate().cycle().take(60) {
        let xs: Vec<u64> = (0..k).map(|_| rand_code(true)).collect();
        let ys: Vec<u64> = (0..k).map(|_| rand_code(true)).collect();
        let a = PositPlane::from_bits(fmt, &xs);
        let b = PositPlane::from_bits(fmt, &ys);
        let mut sum = Rational::ZERO;
        for (&ca, &cb) in xs.iter().zip(&ys) {
            sum = sum.add(&exact(fmt, ca).mul(&exact(fmt, cb)));
        }
        for rounding in [Rounding::NearestEven, Rounding::ToZero] {
            let fast = PositGemm::new(fmt, rounding);
            assert!(fast.uses_narrow_path(0, k));
            let want = fmt.to_f32(round_ref(&rounder, &sum, rounding));
            let mut c = vec![0.0f32; 1];
            fast.gemm(1, k, 1, &a, &b, &mut c);
            assert_eq!(c[0], want, "narrow trial {trial} k={k} {rounding:?}");
            let mut c = vec![0.0f32; 1];
            fast.wide_accumulator(true).gemm(1, k, 1, &a, &b, &mut c);
            assert_eq!(c[0], want, "wide trial {trial} k={k} {rounding:?}");
        }
    }
}

/// Forced-fallback agreement at GEMM scale: a (16,1) shape big enough to
/// engage register tiles, edge loops and the parallel row split, with NaR
/// and zero elements mixed in, must produce identical outputs through the
/// narrow fast path and the forced wide quire.
#[test]
fn forced_fallback_agrees_on_gemm_scale_inputs() {
    let fmt = PositFormat::of(16, 1);
    let (m, k, n) = (37, 19, 23);
    let mut state = 0xABCD_EF01_2345_6789u64;
    let mut codes = |len: usize| -> Vec<u64> {
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if i % 11 == 0 {
                    0 // zeros exercise the skip branch
                } else {
                    (state >> 13) & fmt.mask()
                }
            })
            .collect()
    };
    let mut a_codes = codes(m * k);
    let mut b_codes = codes(k * n);
    // One NaR in each operand: poisons a single output row/column, leaving
    // plenty of finite outputs to compare.
    a_codes[3 * k + 1] = fmt.nar_bits();
    b_codes[2 * n + 5] = fmt.nar_bits();
    let a = PositPlane::from_bits(fmt, &a_codes);
    let b = PositPlane::from_bits(fmt, &b_codes);
    let fast = PositGemm::new(fmt, Rounding::NearestEven);
    let wide = fast.wide_accumulator(true);
    let mut c_fast = vec![0.0f32; m * n];
    let mut c_wide = vec![0.0f32; m * n];
    fast.gemm(m, k, n, &a, &b, &mut c_fast);
    wide.gemm(m, k, n, &a, &b, &mut c_wide);
    for (i, (x, y)) in c_fast.iter().zip(&c_wide).enumerate() {
        assert!(
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
            "element {i}: {x} vs {y}"
        );
    }
    assert!(
        c_fast.iter().any(|v| v.is_nan()),
        "the sweep should exercise NaR outputs"
    );
    assert!(
        c_fast.iter().any(|v| *v != 0.0 && !v.is_nan()),
        "the sweep should exercise finite outputs"
    );
}

/// The transposed kernel entry points must agree with the plain one on the
/// same exhaustive data (shape conventions only differ in storage order),
/// for every 8-bit training format.
#[test]
fn transposed_kernels_bitwise_agree_on_exhaustive_data() {
    for fmt in NARROW_FMTS {
        let codes = finite_codes(fmt);
        // Arrange the 254 codes as a 127×2 times 2×127 product.
        let (m, k, n) = (127usize, 2usize, 127usize);
        let a_codes = &codes[..m * k];
        let b_codes = &codes[..k * n];
        let kernel = PositGemm::new(fmt, Rounding::NearestEven);
        let a = PositPlane::from_bits(fmt, a_codes);
        let b = PositPlane::from_bits(fmt, b_codes);
        let mut want = vec![0.0f32; m * n];
        kernel.gemm(m, k, n, &a, &b, &mut want);

        let mut at_codes = vec![0u64; k * m];
        for i in 0..m {
            for kk in 0..k {
                at_codes[kk * m + i] = a_codes[i * k + kk];
            }
        }
        let a_t = PositPlane::from_bits(fmt, &at_codes);
        let mut c = vec![0.0f32; m * n];
        kernel.gemm_at_b(m, k, n, &a_t, &b, &mut c);
        assert_eq!(c, want, "{fmt} gemm_at_b");

        let mut bt_codes = vec![0u64; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt_codes[j * k + kk] = b_codes[kk * n + j];
            }
        }
        let b_t = PositPlane::from_bits(fmt, &bt_codes);
        let mut c = vec![0.0f32; m * n];
        kernel.gemm_a_bt(m, k, n, &a, &b_t, &mut c);
        assert_eq!(c, want, "{fmt} gemm_a_bt");
    }
}

/// A deterministic 64-bit LCG stream for the sweeps below.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// The SWAR lane-group decode (`n ≤ 8`) and the two-level-LUT decode
/// (`8 < n ≤ 16`) must match the bit-twiddled scalar oracle element for
/// element: every code word of every 8-bit training format (with
/// out-of-range high bits mixed in to pin the masking alias), the full
/// posit(16,1) code space, and a sampled wide-format fallback.
#[test]
fn plane_decode_paths_match_scalar_oracle() {
    // n ≤ 8: full code space + garbage high bits + a non-multiple-of-8
    // length so the lane-group remainder loop runs.
    for fmt in NARROW_FMTS {
        let mut bits: Vec<u64> = (0..fmt.code_count()).collect();
        bits.extend((0..fmt.code_count()).map(|c| c | 0xABCD_EF00));
        bits.extend([0, 1, fmt.nar_bits()]); // remainder lanes
        let fast = PositPlane::from_bits(fmt, &bits);
        let oracle = PositPlane::from_bits_scalar(fmt, &bits);
        assert_eq!(fast.elems(), oracle.elems(), "{fmt} from_bits");
    }
    // 8 < n ≤ 16: the two-level LUT route over the full (16,1) space.
    let fmt = PositFormat::of(16, 1);
    let bits: Vec<u64> = (0..fmt.code_count()).collect();
    let fast = PositPlane::from_bits(fmt, &bits);
    let oracle = PositPlane::from_bits_scalar(fmt, &bits);
    assert_eq!(fast.elems(), oracle.elems(), "{fmt} from_bits");
    // n > 16: the direct decode route, sampled.
    let fmt = PositFormat::of(32, 3);
    let mut state = 0x5EED_CAFE_F00D_BEEFu64;
    let bits: Vec<u64> = (0..4096).map(|_| lcg(&mut state) & fmt.mask()).collect();
    let fast = PositPlane::from_bits(fmt, &bits);
    let oracle = PositPlane::from_bits_scalar(fmt, &bits);
    assert_eq!(fast.elems(), oracle.elems(), "{fmt} from_bits");
}

/// The packed-plane decode (u64 lane groups over byte storage, two-level
/// LUT over u16 storage, direct decode otherwise) must match its scalar
/// oracle for every storage width, with nonzero Eq. 2 scale shifts and
/// zero/NaR elements in the stream.
#[test]
fn packed_plane_decode_matches_scalar_oracle() {
    let mut state = 0x0123_4567_89AB_CDEFu64;
    for (n, es, len) in [
        (8u32, 1u32, 1003usize), // byte storage, lane-group remainder of 3
        (8, 2, 64),              // byte storage, exact lane groups
        (16, 1, 517),            // u16 storage, two-level LUT route
        (32, 3, 129),            // u32 storage, direct decode route
    ] {
        let fmt = PositFormat::of(n, es);
        let mut packed = PackedBits::for_format(fmt, len);
        for i in 0..len {
            let code = match i % 13 {
                0 => 0,              // zeros keep their canonical element
                7 => fmt.nar_bits(), // NaR keeps its sentinel under shifts
                _ => lcg(&mut state) & fmt.mask(),
            };
            packed.push(code);
        }
        for scale_exp in [-9i32, 0, 6] {
            let fast = PositPlane::from_packed(fmt, &packed, scale_exp);
            let oracle = PositPlane::from_packed_scalar(fmt, &packed, scale_exp);
            assert_eq!(fast.scale_exp(), oracle.scale_exp());
            assert_eq!(
                fast.elems(),
                oracle.elems(),
                "{fmt} from_packed scale_exp={scale_exp}"
            );
        }
    }
}

/// The K-strip batched micro-kernel groups exact integer terms before the
/// quire sees them, so forcing it on must be bit-identical to the scalar
/// narrow kernel on the same inputs — pinned on every pairwise product of
/// every 8-bit training format (k = 1, the degenerate strip).
#[test]
fn kstrip_pairwise_products_bitwise_agree() {
    for fmt in NARROW_FMTS {
        let codes = finite_codes(fmt);
        let m = codes.len();
        let a = PositPlane::from_bits(fmt, &codes);
        let b = PositPlane::from_bits(fmt, &codes);
        for rounding in [Rounding::NearestEven, Rounding::ToZero] {
            let off = PositGemm::new(fmt, rounding).kstrip(KStripMode::Off);
            let force = PositGemm::new(fmt, rounding).kstrip(KStripMode::Force);
            assert!(!off.uses_kstrip_path(0, 1));
            assert!(force.uses_kstrip_path(0, 1), "{fmt} must batch");
            let mut c_off = vec![0.0f32; m * m];
            let mut c_force = vec![0.0f32; m * m];
            off.gemm(m, 1, m, &a, &b, &mut c_off);
            force.gemm(m, 1, m, &a, &b, &mut c_force);
            assert_eq!(c_off, c_force, "{fmt} {rounding:?}");
        }
    }
}

/// Sampled posit(16,1) K-strip agreement at GEMM scale: register-tile
/// interiors, row/column tails, zero and NaR lanes, reduction depths
/// around the Auto threshold and around the strip boundary (8192) — the
/// batched kernel must match the scalar kernel bit for bit everywhere.
#[test]
fn kstrip_sampled_p16_sweeps_agree() {
    let fmt = PositFormat::of(16, 1);
    let mut state = 0xFACE_0FF5_1234_5678u64;
    // (m, k, n): tails (m % 4, n % 4 ≠ 0), depths straddling the Auto
    // threshold (48) and the K-strip length (8192).
    for (m, k, n) in [
        (5usize, 1usize, 6usize),
        (6, 2, 7),
        (4, 47, 4),
        (5, 48, 9),
        (7, 49, 3),
        (9, 333, 5),
        // The (16,1) narrow K budget is exactly 8192 (13 guard bits), so
        // the deepest batched reductions run as one full-length strip;
        // deeper-than-one-strip shapes are pinned on (8,1) below.
        (3, 8191, 5),
        (2, 8192, 6),
    ] {
        let mut gen_codes = |len: usize, poison: bool| -> Vec<u64> {
            (0..len)
                .map(|i| {
                    if i % 11 == 0 {
                        0
                    } else if poison && i % 97 == 3 {
                        fmt.nar_bits()
                    } else {
                        (lcg(&mut state) >> 17) & fmt.mask()
                    }
                })
                .collect()
        };
        let a = PositPlane::from_bits(fmt, &gen_codes(m * k, true));
        let b = PositPlane::from_bits(fmt, &gen_codes(k * n, true));
        let off = PositGemm::new(fmt, Rounding::NearestEven).kstrip(KStripMode::Off);
        let force = PositGemm::new(fmt, Rounding::NearestEven).kstrip(KStripMode::Force);
        assert!(force.uses_kstrip_path(0, k), "k={k} must batch");
        let mut c_off = vec![0.0f32; m * n];
        let mut c_force = vec![0.0f32; m * n];
        off.gemm(m, k, n, &a, &b, &mut c_off);
        force.gemm(m, k, n, &a, &b, &mut c_force);
        for (i, (x, y)) in c_off.iter().zip(&c_force).enumerate() {
            assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "{m}x{k}x{n} element {i}: {x} vs {y}"
            );
        }
    }
}

/// K-strip boundary crossing: posit(8,1)'s huge narrow budget admits
/// reductions deeper than one 8192-element strip, so these shapes force
/// the multi-strip flush/reset cycle (remainder strips included) and must
/// still match the scalar kernel bit for bit.
#[test]
fn kstrip_multi_strip_shapes_agree() {
    let fmt = PositFormat::of(8, 1);
    let mut state = 0xBEE5_0000_DEAD_10CCu64;
    for (m, k, n) in [(3usize, 8193usize, 4usize), (2, 16385, 3), (5, 12000, 2)] {
        // NaR-free streams (NaR poisoning is pinned by the (16,1) sweep
        // above): with NaR anywhere in a multi-strip column every output
        // is NaN and the strip arithmetic goes untested.
        let mut gen_codes = |len: usize| -> Vec<u64> {
            (0..len)
                .map(|i| {
                    if i % 23 == 0 {
                        0
                    } else {
                        match (lcg(&mut state) >> 11) & fmt.mask() {
                            c if c == fmt.nar_bits() => 1,
                            c => c,
                        }
                    }
                })
                .collect()
        };
        let a = PositPlane::from_bits(fmt, &gen_codes(m * k));
        let b = PositPlane::from_bits(fmt, &gen_codes(k * n));
        let off = PositGemm::new(fmt, Rounding::NearestEven).kstrip(KStripMode::Off);
        let force = PositGemm::new(fmt, Rounding::NearestEven).kstrip(KStripMode::Force);
        assert!(force.uses_kstrip_path(0, k), "k={k} must batch");
        let mut c_off = vec![0.0f32; m * n];
        let mut c_force = vec![0.0f32; m * n];
        off.gemm(m, k, n, &a, &b, &mut c_off);
        force.gemm(m, k, n, &a, &b, &mut c_force);
        assert_eq!(c_off, c_force, "{m}x{k}x{n}");
    }
}
