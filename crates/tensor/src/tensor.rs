//! The contiguous row-major tensor with dual-domain storage.

use crate::rng::Prng;
use crate::storage::{PackedBits, Storage, StorageDomain, StorageError};
use posit::{PositFormat, Rounding};
use std::borrow::Cow;
use std::fmt;

/// A dense, contiguous, row-major tensor.
///
/// Storage lives in one of two domains (see [`Storage`]): a plain `f32`
/// buffer, or a packed posit plane (code words + format + Eq. 2 scale
/// exponent). Most ops require the f32 domain; [`Tensor::to_posit`] and
/// [`Tensor::to_f32`] are the explicit transitions, and GEMM-shaped ops
/// accept either domain through [`crate::Operand`].
///
/// ```
/// use posit_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// // [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]]
/// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
///
/// Packing to posit cuts the footprint by the word-size ratio:
///
/// ```
/// use posit::{PositFormat, Rounding};
/// use posit_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![0.5; 64], &[64]);
/// let p = t.to_posit(PositFormat::of(8, 1), 0, Rounding::NearestEven);
/// assert_eq!(t.nbytes(), 256); // 4 bytes/elem
/// assert_eq!(p.nbytes(), 64); // 1 byte/elem
/// assert_eq!(p.to_f32().data(), t.data()); // 0.5 is exact in (8,1)
/// ```
#[derive(Clone)]
pub struct Tensor {
    storage: Storage,
    shape: Vec<usize>,
    /// Content stamp (see [`Tensor::version`]).
    version: u64,
}

/// Process-unique content stamps: every constructed tensor and every
/// mutable-buffer borrow gets a fresh one, so two tensors only ever share a
/// stamp through `clone()` — when their contents are identical.
fn next_version() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Tensor) -> bool {
        // The version stamp is bookkeeping, not content.
        self.storage == other.storage && self.shape == other.shape
    }
}

impl Tensor {
    fn with_storage(storage: Storage, shape: Vec<usize>) -> Tensor {
        Tensor {
            storage,
            shape,
            version: next_version(),
        }
    }

    /// All zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor::with_storage(
            Storage::F32(vec![0.0; shape.iter().product()]),
            shape.to_vec(),
        )
    }

    /// All ones with the given shape.
    pub fn ones(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Constant fill.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        Tensor::with_storage(
            Storage::F32(vec![value; shape.iter().product()]),
            shape.to_vec(),
        )
    }

    /// Identity matrix of side `n`.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(&[n, n]);
        t.data_mut()[..]
            .chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row[i] = 1.0);
        t
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor::with_storage(Storage::F32(data), shape.to_vec())
    }

    /// Wrap packed posit code words (the posit-domain twin of
    /// [`Tensor::from_vec`]).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the shape's element count, if
    /// the buffer width does not match the format's word width (a `u8`
    /// plane holding `(16,x)` codes would silently decode garbage), or if
    /// `scale_exp` is outside the sane Eq. 2 band (`|e| ≤ 2^20` — far
    /// beyond any calibrated scale, and small enough that quire-margin
    /// arithmetic cannot overflow).
    pub fn from_posit_bits(
        bits: PackedBits,
        format: PositFormat,
        scale_exp: i32,
        shape: &[usize],
    ) -> Tensor {
        assert_eq!(
            bits.len(),
            shape.iter().product::<usize>(),
            "bit-plane length {} does not match shape {:?}",
            bits.len(),
            shape
        );
        let width = match &bits {
            PackedBits::U8(_) => 1,
            PackedBits::U16(_) => 2,
            PackedBits::U32(_) => 4,
        };
        assert_eq!(
            width,
            PackedBits::bytes_per_elem(format),
            "packed width {width} B does not fit {format}"
        );
        assert!(
            scale_exp.unsigned_abs() <= 1 << 20,
            "implausible scale exponent {scale_exp}"
        );
        Tensor::with_storage(
            Storage::Posit {
                bits,
                format,
                scale_exp,
            },
            shape.to_vec(),
        )
    }

    /// Uniform random values in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Prng) -> Tensor {
        let n = shape.iter().product();
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Gaussian random values with the given mean and standard deviation.
    pub fn rand_normal(shape: &[usize], mean: f32, std: f32, rng: &mut Prng) -> Tensor {
        let n = shape.iter().product();
        let data = (0..n).map(|_| rng.normal(mean, std)).collect();
        Tensor::from_vec(data, shape)
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// The underlying storage (domain, format, packed bits).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Which domain the tensor's storage lives in.
    pub fn domain(&self) -> StorageDomain {
        self.storage.domain()
    }

    /// True iff the storage is a packed posit plane.
    pub fn is_posit(&self) -> bool {
        self.domain() == StorageDomain::Posit
    }

    /// Storage footprint in bytes (4·len for f32; width·len for posit).
    pub fn nbytes(&self) -> usize {
        self.storage.nbytes()
    }

    /// The packed plane `(bits, format, scale_exp)` of a posit-domain
    /// tensor, or `None` in the f32 domain.
    pub fn posit_bits(&self) -> Option<(&PackedBits, PositFormat, i32)> {
        match &self.storage {
            Storage::F32(_) => None,
            Storage::Posit {
                bits,
                format,
                scale_exp,
            } => Some((bits, *format, *scale_exp)),
        }
    }

    /// Immutable view of the underlying f32 buffer.
    ///
    /// # Panics
    ///
    /// Panics on a posit-domain tensor: packed bits have no f32 view. Use
    /// [`Tensor::to_f32`] (or [`Tensor::dense`]) to cross the domain
    /// boundary explicitly, or [`Tensor::posit_bits`] for the code words.
    pub fn data(&self) -> &[f32] {
        match self.try_data() {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking variant of [`Tensor::data`]: `Ok` with the f32 slice
    /// in the f32 domain, `Err(StorageError::NotF32)` for a packed posit
    /// plane. Use this at boundaries where the tensor's domain is caller
    /// input rather than an internal invariant — e.g. a sample submitted
    /// to the inference server — so the mismatch surfaces as a recoverable
    /// error instead of a panic.
    pub fn try_data(&self) -> Result<&[f32], StorageError> {
        match &self.storage {
            Storage::F32(v) => Ok(v),
            Storage::Posit { format, .. } => Err(StorageError::NotF32 { format: *format }),
        }
    }

    /// Content stamp of this tensor's buffer: a process-unique value
    /// assigned at construction and refreshed on every [`Tensor::data_mut`]
    /// borrow, so an unchanged stamp guarantees unchanged contents. Clones
    /// share their source's stamp (their contents are identical) until
    /// either side is mutably borrowed. This is what lets derived artifacts
    /// — e.g. the decoded weight planes in [`crate::OperandCache`] — be
    /// reused across calls and invalidated automatically when the optimizer
    /// writes new weights.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Mutable view of the underlying f32 buffer. Refreshes the content
    /// stamp (see [`Tensor::version`]): the borrow may write.
    ///
    /// # Panics
    ///
    /// Panics on a posit-domain tensor (see [`Tensor::data`]).
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.version = next_version();
        match &mut self.storage {
            Storage::F32(v) => v,
            Storage::Posit { format, .. } => {
                panic!("mutable f32 view of a posit-domain tensor ({format}): call to_f32() first")
            }
        }
    }

    /// Take ownership of the f32 buffer.
    ///
    /// # Panics
    ///
    /// Panics on a posit-domain tensor (see [`Tensor::data`]).
    pub fn into_vec(self) -> Vec<f32> {
        match self.storage {
            Storage::F32(v) => v,
            Storage::Posit { format, .. } => {
                panic!("into_vec on a posit-domain tensor ({format}): call into_f32() first")
            }
        }
    }

    /// Encode into the posit domain: `bits[i] = P(x[i] / 2^scale_exp)`,
    /// packed at the format's word width (Eq. 3 with `Sf = 2^scale_exp`).
    ///
    /// A posit-domain source is decoded first (re-encoding crosses through
    /// f32 values, which are exact for every supported format).
    ///
    /// # Panics
    ///
    /// Panics for [`Rounding::Stochastic`], which needs a caller-owned
    /// random stream; use [`Tensor::to_posit_with`].
    pub fn to_posit(&self, format: PositFormat, scale_exp: i32, rounding: Rounding) -> Tensor {
        assert!(
            rounding != Rounding::Stochastic,
            "stochastic encoding needs a random stream; use to_posit_with"
        );
        let mut state = 0u64;
        self.to_posit_with(format, scale_exp, rounding, &mut state)
    }

    /// [`Tensor::to_posit`] with an explicit stochastic-rounding stream.
    ///
    /// `rand_state` is advanced once per element with the same generator as
    /// the Eq. 3 in-place quantizer, so a packed encode and an f32-domain
    /// `P(·)` round trip consume identical randomness and land on identical
    /// code words. Deterministic modes ignore (and do not advance) it.
    pub fn to_posit_with(
        &self,
        format: PositFormat,
        scale_exp: i32,
        rounding: Rounding,
        rand_state: &mut u64,
    ) -> Tensor {
        let dense = self.dense();
        let xs = dense.data();
        let inv = (-scale_exp as f32).exp2();
        let mut bits = PackedBits::for_format(format, xs.len());
        match rounding {
            Rounding::Stochastic => {
                for &x in xs {
                    let z = posit::quant::sr_next(rand_state);
                    bits.push(format.from_f64_stochastic((x * inv) as f64, z));
                }
            }
            mode => {
                for &x in xs {
                    bits.push(format.from_f64((x * inv) as f64, mode));
                }
            }
        }
        if posit_obs::enabled() {
            record_encode_edges(format, xs, inv, &bits);
        }
        Tensor::with_storage(
            Storage::Posit {
                bits,
                format,
                scale_exp,
            },
            self.shape.clone(),
        )
    }

    /// Decode into the f32 domain: `x[i] = posit(bits[i]) · 2^scale_exp`
    /// (exact — every supported posit value and scale shift is
    /// representable in f32 up to the format's range). An f32-domain tensor
    /// is cloned unchanged.
    pub fn to_f32(&self) -> Tensor {
        match &self.storage {
            Storage::F32(_) => self.clone(),
            Storage::Posit {
                bits,
                format,
                scale_exp,
            } => {
                let sf = (*scale_exp as f32).exp2();
                let data = bits.iter().map(|b| format.to_f32(b) * sf).collect();
                Tensor::with_storage(Storage::F32(data), self.shape.clone())
            }
        }
    }

    /// Consuming [`Tensor::to_f32`]: a no-op move in the f32 domain.
    pub fn into_f32(self) -> Tensor {
        if self.is_posit() {
            self.to_f32()
        } else {
            self
        }
    }

    /// A borrowed f32-domain view: the tensor itself when already dense, a
    /// decoded copy when posit-packed. The cheap way for f32-only consumers
    /// to accept either domain.
    pub fn dense(&self) -> Cow<'_, Tensor> {
        if self.is_posit() {
            Cow::Owned(self.to_f32())
        } else {
            Cow::Borrowed(self)
        }
    }

    /// Reinterpret with a new shape of identical element count. Works in
    /// both storage domains (the buffer is untouched).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Rows `[start, end)` along the leading dimension as a new tensor.
    ///
    /// Works in both storage domains and — crucially for bit-exact batch
    /// sharding — a posit-domain slice copies the packed code words
    /// verbatim and keeps the plane's format and scale exponent, so a
    /// shard of an encoded batch holds exactly the code words the full
    /// batch holds at those rows. (Decoding to f32 and re-encoding would
    /// not be safe: the decoded value times `2^scale_exp` need not be
    /// representable on the unshifted grid.)
    ///
    /// # Panics
    ///
    /// Panics on a 0-d tensor or an out-of-range/inverted row range.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(!self.shape.is_empty(), "slice_rows on a 0-d tensor");
        assert!(
            start <= end && end <= self.shape[0],
            "row range {start}..{end} out of bounds for leading dim {}",
            self.shape[0]
        );
        let row: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        let storage = match &self.storage {
            Storage::F32(v) => Storage::F32(v[start * row..end * row].to_vec()),
            Storage::Posit {
                bits,
                format,
                scale_exp,
            } => Storage::Posit {
                bits: bits.slice(start * row, end * row),
                format: *format,
                scale_exp: *scale_exp,
            },
        };
        Tensor::with_storage(storage, shape)
    }

    /// Element at a 2-D position (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D, posit-domain, or out of bounds.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 on non-matrix");
        self.data()[i * self.shape[1] + j]
    }

    /// Elementwise map into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on a posit-domain tensor (see [`Tensor::data`]).
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::with_storage(
            Storage::F32(self.data().iter().map(|&x| f(x)).collect()),
            self.shape.clone(),
        )
    }

    /// Elementwise map in place.
    ///
    /// # Panics
    ///
    /// Panics on a posit-domain tensor (see [`Tensor::data`]).
    pub fn apply(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Elementwise binary zip into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or posit-domain operands.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor::with_storage(
            Storage::F32(
                self.data()
                    .iter()
                    .zip(other.data())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
            self.shape.clone(),
        )
    }

    /// `self + other` elementwise.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other` elementwise.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// `self * other` elementwise (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// `self + alpha * other`, in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or posit-domain operands.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        let other = other.data();
        for (a, &b) in self.data_mut().iter_mut().zip(other) {
            *a += alpha * b;
        }
    }

    /// Scale by a scalar, in place.
    ///
    /// # Panics
    ///
    /// Panics on a posit-domain tensor (see [`Tensor::data`]).
    pub fn scale(&mut self, alpha: f32) {
        for a in self.data_mut() {
            *a *= alpha;
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.dense().data().iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.dense()
            .data()
            .iter()
            .fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// 2-D matrix transpose.
    ///
    /// # Panics
    ///
    /// Panics if not 2-D or posit-domain.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2 on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let src = self.data();
        let mut out = Tensor::zeros(&[n, m]);
        {
            let dst = out.data_mut();
            for i in 0..m {
                for j in 0..n {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
        out
    }

    /// Matrix product `self[M,K] × other[K,N]`, dispatching on storage
    /// domain: two packed planes of the same posit format run on the
    /// decode-once quire GEMM (exact accumulation, one rounding per output
    /// element, nearest-even); any other combination runs on the blocked
    /// parallel f32 kernel after decoding posit operands. The result is
    /// always f32-domain.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs not 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs not 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        match (self.posit_bits(), other.posit_bits()) {
            (Some((ab, af, ae)), Some((bb, bf, be))) if af == bf => {
                let kernel = crate::posit_gemm::PositGemm::new(af, Rounding::NearestEven);
                let pa = crate::posit_gemm::PositPlane::from_packed(af, ab, ae);
                let pb = crate::posit_gemm::PositPlane::from_packed(bf, bb, be);
                kernel.gemm(m, k, n, &pa, &pb, out.data_mut());
            }
            _ => {
                let a = self.dense();
                let b = other.dense();
                crate::gemm::gemm(m, k, n, a.data(), b.data(), out.data_mut());
            }
        }
        out
    }
}

/// Edge-health tally for an encode that just happened: each scaled input
/// is compared against its code word — read-only on both sides, so the
/// encode result is untouched. Tallies land under the thread's current
/// `posit_obs` edge label (`edge.{label}.*`), plus a log2-magnitude
/// histogram of the pre-quantization scaled values. Callers gate on
/// [`posit_obs::enabled`]; this does a second pass over the data, which
/// is why it never runs when recording is off.
fn record_encode_edges(format: PositFormat, xs: &[f32], inv: f32, bits: &PackedBits) {
    let mut tally = posit_obs::EdgeTally::default();
    let log2 = posit_obs::edge_log2_histogram(None);
    let maxpos = format.maxpos();
    let nar = format.nar_bits();
    for (&x, code) in xs.iter().zip(bits.iter()) {
        let scaled = (x * inv) as f64;
        tally.total += 1;
        if code == nar {
            tally.nar += 1;
        } else if scaled.is_finite() && scaled.abs() > maxpos {
            tally.clamped += 1;
        } else if scaled != 0.0 && code == 0 {
            tally.flushed += 1;
        }
        if let Some(v) = posit_obs::log2_offset_of(scaled) {
            log2.record(v);
        }
    }
    posit_obs::record_edge(None, &tally);
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if let Some((_, format, scale_exp)) = self.posit_bits() {
            return write!(
                f,
                " packed {format} scale 2^{scale_exp} ({} B, n={})",
                self.nbytes(),
                self.len()
            );
        }
        let data = self.data();
        if data.len() <= 16 {
            write!(f, " {:?}", data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}] (n={})",
                data[0],
                data[1],
                data[data.len() - 1],
                data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_data_reports_the_domain_instead_of_panicking() {
        let t = Tensor::from_vec(vec![0.5, -0.25], &[2]);
        assert_eq!(t.try_data().unwrap(), &[0.5, -0.25]);
        let fmt = PositFormat::of(8, 1);
        let p = t.to_posit(fmt, 0, Rounding::NearestEven);
        let err = p.try_data().unwrap_err();
        assert_eq!(err, StorageError::NotF32 { format: fmt });
        // The error text matches data()'s panic message, format included.
        assert!(err.to_string().contains("posit-domain"));
        assert!(err.to_string().contains(&fmt.to_string()));
    }

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(!t.is_empty());
        let u = Tensor::full(&[2], 3.5);
        assert_eq!(u.data(), &[3.5, 3.5]);
        assert_eq!(Tensor::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).data(), &[10.0, 40.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[21.0, 42.0]);
        c.scale(0.5);
        assert_eq!(c.data(), &[10.5, 21.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -4.0, 3.0], &[3]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn slice_rows_both_domains() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[4, 2, 3]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape(), &[2, 2, 3]);
        assert_eq!(s.data(), &t.data()[6..18]);
        assert_eq!(t.slice_rows(2, 2).len(), 0, "empty slice is fine");
        // Packed slices keep the exact code words, format and scale.
        let fmt = PositFormat::of(8, 1);
        let vals: Vec<f32> = (0..12).map(|i| i as f32 * 0.37 - 2.0).collect();
        let p = Tensor::from_vec(vals, &[4, 3]).to_posit(fmt, -2, Rounding::NearestEven);
        let ps = p.slice_rows(1, 3);
        assert_eq!(ps.shape(), &[2, 3]);
        let (full, f, e) = p.posit_bits().unwrap();
        let (part, pf, pe) = ps.posit_bits().unwrap();
        assert_eq!((pf, pe), (f, e), "format and scale_exp survive the slice");
        for i in 0..6 {
            assert_eq!(part.get(i), full.get(3 + i), "code words copied verbatim");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rows_validates_range() {
        let _ = Tensor::zeros(&[2, 2]).slice_rows(1, 3);
    }

    #[test]
    fn rng_determinism() {
        let mut r1 = Prng::seed(42);
        let mut r2 = Prng::seed(42);
        let a = Tensor::rand_normal(&[32], 0.0, 1.0, &mut r1);
        let b = Tensor::rand_normal(&[32], 0.0, 1.0, &mut r2);
        assert_eq!(a, b);
        let c = Tensor::rand_uniform(&[8], -1.0, 1.0, &mut r1);
        assert!(c.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn version_tracks_content_changes() {
        let mut t = Tensor::zeros(&[4]);
        let v0 = t.version();
        let c = t.clone();
        assert_eq!(c.version(), v0, "clone shares the stamp (same contents)");
        t.data_mut()[0] = 1.0;
        assert_ne!(t.version(), v0, "mutable borrow refreshes the stamp");
        assert_eq!(c.version(), v0, "clone keeps its own stamp");
        let u = Tensor::zeros(&[4]);
        assert_ne!(u.version(), c.version(), "fresh tensors are unique");
        assert_eq!(u, Tensor::zeros(&[4]), "stamp is not part of equality");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Tensor::zeros(&[0])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(&[100])).is_empty());
        let p = Tensor::zeros(&[4]).to_posit(PositFormat::of(8, 1), 0, Rounding::ToZero);
        let s = format!("{p:?}");
        assert!(s.contains("packed"), "{s}");
    }

    #[test]
    fn posit_roundtrip_exact_values() {
        let fmt = PositFormat::of(8, 1);
        let t = Tensor::from_vec(vec![1.0, -0.5, 2.0, 0.0], &[2, 2]);
        let p = t.to_posit(fmt, 0, Rounding::NearestEven);
        assert!(p.is_posit());
        assert_eq!(p.domain(), StorageDomain::Posit);
        assert_eq!(p.shape(), &[2, 2]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.nbytes(), 4);
        assert_eq!(p.to_f32(), t);
        assert_eq!(p.clone().into_f32(), t);
        assert_eq!(p.dense().data(), t.data());
        // f32 tensors pass through dense()/into_f32 untouched.
        assert!(matches!(t.dense(), Cow::Borrowed(_)));
        let (bits, f, e) = p.posit_bits().unwrap();
        assert_eq!(f, fmt);
        assert_eq!(e, 0);
        assert_eq!(bits.get(0), fmt.one_bits());
    }

    #[test]
    fn scale_exp_shifts_the_grid() {
        // 96 is off the (8,1) grid near its magnitude (step 8 at scale 6),
        // representable exactly once shifted down by 2^4.
        let fmt = PositFormat::of(8, 1);
        let t = Tensor::from_vec(vec![96.0], &[1]);
        let plain = t.to_posit(fmt, 0, Rounding::NearestEven);
        let shifted = t.to_posit(fmt, 4, Rounding::NearestEven);
        assert_eq!(shifted.to_f32().data(), &[96.0], "6·2^4 exact when shifted");
        assert_eq!(plain.to_f32().data(), &[96.0], "96 = 1.5·64 is (8,1) exact");
        // A value needing the shift: 2^-25 is far below (8,1)'s minpos
        // (2^-12) and flushes at scale 0 (ToZero), but survives once the
        // grid is shifted down by 2^-13 (2^-25/2^-13 = minpos = 2^-12).
        let tiny = Tensor::from_vec(vec![(-25f32).exp2()], &[1]);
        assert_eq!(
            tiny.to_posit(fmt, 0, Rounding::ToZero).to_f32().data(),
            &[0.0]
        );
        assert_eq!(
            tiny.to_posit(fmt, -13, Rounding::ToZero).to_f32().data(),
            &[(-25f32).exp2()]
        );
    }

    #[test]
    fn nar_propagates_through_the_roundtrip() {
        let fmt = PositFormat::of(8, 0);
        let t = Tensor::from_vec(vec![f32::NAN, 1.0], &[2]);
        let p = t.to_posit(fmt, 0, Rounding::NearestEven);
        let (bits, ..) = p.posit_bits().unwrap();
        assert_eq!(bits.get(0), fmt.nar_bits());
        let back = p.to_f32();
        assert!(back.data()[0].is_nan());
        assert_eq!(back.data()[1], 1.0);
    }

    #[test]
    fn reshape_keeps_the_posit_plane() {
        let fmt = PositFormat::of(8, 1);
        let p = Tensor::from_vec(vec![1.0; 6], &[2, 3]).to_posit(fmt, 0, Rounding::ToZero);
        let r = p.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert!(r.is_posit());
    }

    #[test]
    #[should_panic(expected = "posit-domain")]
    fn data_panics_on_posit_domain() {
        let p = Tensor::ones(&[2]).to_posit(PositFormat::of(8, 1), 0, Rounding::ToZero);
        let _ = p.data();
    }

    #[test]
    fn matmul_dispatches_on_packed_planes() {
        // Exact power-of-two data: the packed quire product must equal the
        // f32 product bit-for-bit.
        let fmt = PositFormat::of(16, 1);
        let a = Tensor::from_vec(vec![1.0, 2.0, -0.5, 4.0, 0.25, -8.0], &[2, 3]);
        let b = Tensor::from_vec(vec![2.0, 0.5, -1.0, 4.0, 0.125, -2.0], &[3, 2]);
        let want = a.matmul(&b);
        let pa = a.to_posit(fmt, 0, Rounding::NearestEven);
        let pb = b.to_posit(fmt, 0, Rounding::NearestEven);
        assert_eq!(pa.matmul(&pb), want, "posit × posit");
        assert_eq!(pa.matmul(&b), want, "mixed decodes");
        assert_eq!(a.matmul(&pb), want, "mixed decodes (rhs)");
        // Scale exponents are honoured: operands carry 2^2 and 2^-1.
        let pa2 = a.to_posit(fmt, 2, Rounding::NearestEven);
        let pb2 = b.to_posit(fmt, -1, Rounding::NearestEven);
        assert_eq!(pa2.matmul(&pb2), want, "scale-shifted planes");
    }

    #[test]
    fn stochastic_encode_stream_is_reproducible() {
        let fmt = PositFormat::of(8, 2);
        let t = Tensor::from_vec((0..64).map(|i| i as f32 * 0.037 - 1.0).collect(), &[64]);
        let mut s1 = 99u64;
        let mut s2 = 99u64;
        let a = t.to_posit_with(fmt, 0, Rounding::Stochastic, &mut s1);
        let b = t.to_posit_with(fmt, 0, Rounding::Stochastic, &mut s2);
        assert_eq!(a, b);
        assert_eq!(s1, s2);
        assert_ne!(s1, 99, "stream must advance");
    }
}
