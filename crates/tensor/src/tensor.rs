//! The contiguous row-major f32 tensor.

use crate::rng::Prng;
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32`.
///
/// ```
/// use posit_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// // [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]]
/// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// All zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// All ones with the given shape.
    pub fn ones(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Constant fill.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        Tensor {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Identity matrix of side `n`.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Uniform random values in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Prng) -> Tensor {
        let n = shape.iter().product();
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Gaussian random values with the given mean and standard deviation.
    pub fn rand_normal(shape: &[usize], mean: f32, std: f32, rng: &mut Prng) -> Tensor {
        let n = shape.iter().product();
        let data = (0..n).map(|_| rng.normal(mean, std)).collect();
        Tensor::from_vec(data, shape)
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Take ownership of the buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at a 2-D position (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 on non-matrix");
        self.data[i * self.shape[1] + j]
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise map in place.
    pub fn apply(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary zip into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// `self + other` elementwise.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other` elementwise.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// `self * other` elementwise (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// `self + alpha * other`, in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale by a scalar, in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// 2-D matrix transpose.
    ///
    /// # Panics
    ///
    /// Panics if not 2-D.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2 on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Matrix product `self[M,K] × other[K,N]` via the blocked parallel
    /// GEMM.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs not 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs not 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        crate::gemm::gemm(m, k, n, &self.data, &other.data, out.data_mut());
        out
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}] (n={})",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(!t.is_empty());
        let u = Tensor::full(&[2], 3.5);
        assert_eq!(u.data(), &[3.5, 3.5]);
        assert_eq!(Tensor::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).data(), &[10.0, 40.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[21.0, 42.0]);
        c.scale(0.5);
        assert_eq!(c.data(), &[10.5, 21.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -4.0, 3.0], &[3]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn rng_determinism() {
        let mut r1 = Prng::seed(42);
        let mut r2 = Prng::seed(42);
        let a = Tensor::rand_normal(&[32], 0.0, 1.0, &mut r1);
        let b = Tensor::rand_normal(&[32], 0.0, 1.0, &mut r2);
        assert_eq!(a, b);
        let c = Tensor::rand_uniform(&[8], -1.0, 1.0, &mut r1);
        assert!(c.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Tensor::zeros(&[0])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(&[100])).is_empty());
    }
}
