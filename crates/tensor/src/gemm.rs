//! Blocked, thread-parallel single-precision matrix multiplication.
//!
//! `C[M,N] += A[M,K] * B[K,N]`, row-major. The kernel iterates `i-k-j` with
//! a register accumulator broadcast of `A[i,k]`, which vectorizes well and
//! keeps the `j` loop streaming over contiguous `B`/`C` rows. Rows of `C`
//! are split statically across threads, so results are bit-deterministic
//! regardless of thread count.

use crate::workers;
use std::sync::Mutex;

/// A take-once slot handing a parallel task its disjoint output block.
type BlockSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;

/// Minimum per-thread row count before work is dispatched to the pool
/// (small problems run single-threaded to avoid dispatch overhead).
const PAR_MIN_ROWS: usize = 32;

/// Minimum multiply-accumulate count before threading pays for itself.
const PAR_MIN_WORK: usize = 1 << 20;

/// Minimum multiply-accumulate count per dispatched lane when the row
/// split is thin. A problem can clear both gates above yet shatter into
/// row blocks so small that each lane finishes faster than its dispatch
/// costs: an fc1-shaped GEMM (`m = 32`, `k = 256`, `n = 128`) passes the
/// total-work gate exactly, but on a 4-thread budget it splits into two
/// 16-row lanes of `2^19` MACs each — slower than running serially. When
/// the blocks are thinner than [`PAR_MIN_ROWS`], each lane must still
/// carry this much work or the problem stays on the caller's thread.
const PAR_MIN_LANE_WORK: usize = 1 << 20;

/// The number of row-block lanes `par_rows` will dispatch for an
/// `[m, _]` output whose kernel performs `work` total multiply-accumulates
/// under the current thread budget; `1` means the serial fast path.
///
/// Public so tests can pin the dispatch decision for a given shape without
/// timing anything (see `tests/worker_pool.rs`).
pub fn planned_lanes(m: usize, work: usize) -> usize {
    let threads = workers::effective_parallelism();
    if m < PAR_MIN_ROWS || work < PAR_MIN_WORK || threads <= 1 {
        return 1;
    }
    let rows_per = m.div_ceil(threads).max(PAR_MIN_ROWS / 2);
    let blocks = m.div_ceil(rows_per);
    if rows_per < PAR_MIN_ROWS && work / blocks < PAR_MIN_LANE_WORK {
        return 1;
    }
    blocks
}

/// Split the `[m, n]` output buffer `c` into contiguous row blocks and run
/// `body(first_row, block)` on each, dispatching the blocks to the
/// persistent worker pool ([`crate::workers`]) when the problem is big
/// enough (`work` is the total multiply-accumulate count).
///
/// The split is static — the same `(m, n)` always yields the same blocks,
/// each block's output is computed entirely by whichever lane runs it —
/// so any kernel whose per-element reduction order is fixed stays
/// bit-deterministic regardless of thread count or lane assignment. Shared
/// by the f32 kernels here and the posit kernels in [`crate::posit_gemm`].
pub(crate) fn par_rows<F>(m: usize, n: usize, work: usize, c: &mut [f32], body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(c.len(), m * n);
    let threads = workers::effective_parallelism();
    if n == 0 || planned_lanes(m, work) <= 1 {
        body(0, c);
        return;
    }
    let rows_per = m.div_ceil(threads).max(PAR_MIN_ROWS / 2);
    // The same block boundaries the scoped-thread splitter used: hand each
    // task its disjoint `&mut` chunk through a take-once slot (each index
    // is executed exactly once, so the lock is uncontended bookkeeping).
    let mut blocks: Vec<BlockSlot<'_, f32>> = Vec::new();
    let mut c_rest = c;
    let mut row0 = 0usize;
    loop {
        let rows = rows_per.min(c_rest.len() / n);
        if rows == 0 {
            break;
        }
        let (c_chunk, c_next) = c_rest.split_at_mut(rows * n);
        blocks.push(Mutex::new(Some((row0, c_chunk))));
        c_rest = c_next;
        row0 += rows;
    }
    workers::run_indexed(blocks.len(), &|t| {
        let (row0, chunk) = blocks[t]
            .lock()
            .expect("block slot poisoned")
            .take()
            .expect("block executed twice");
        body(row0, chunk);
    });
}

/// Map `f(index, item)` over `items` with the same static partitioning as
/// the GEMM row splitter (`par_rows`): contiguous index blocks on the
/// persistent worker pool, deterministic output order regardless of thread
/// count.
///
/// `min_per_thread` is the smallest block worth dispatching — fewer items
/// run serially on the caller's thread. This is the partitioner the
/// chunked store reuses for parallel chunk encode/decode, where each item
/// is an independent chunk job producing an owned result.
pub fn par_map_indexed<T, U, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = workers::effective_parallelism();
    let min_per_thread = min_per_thread.max(1);
    if items.len() <= min_per_thread || threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per = items.len().div_ceil(threads).max(min_per_thread);
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    {
        let mut tasks: Vec<BlockSlot<'_, Option<U>>> = Vec::new();
        let mut out_rest: &mut [Option<U>] = &mut out;
        let mut start = 0usize;
        while !out_rest.is_empty() {
            let take = per.min(out_rest.len());
            let (block, next) = out_rest.split_at_mut(take);
            tasks.push(Mutex::new(Some((start, block))));
            out_rest = next;
            start += take;
        }
        workers::run_indexed(tasks.len(), &|t| {
            let (start, block) = tasks[t]
                .lock()
                .expect("map slot poisoned")
                .take()
                .expect("map block executed twice");
            for (off, slot) in block.iter_mut().enumerate() {
                *slot = Some(f(start + off, &items[start + off]));
            }
        });
    }
    out.into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// `c = a[m,k] * b[k,n]` (c must be zeroed or hold the accumulation base).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    par_rows(m, n, m * k * n, c, |row0, c_chunk| {
        let rows = c_chunk.len().checked_div(n).unwrap_or(0);
        gemm_rows(k, n, &a[row0 * k..(row0 + rows) * k], b, c_chunk);
    });
}

/// Single-threaded kernel over a row block of `A`/`C`.
fn gemm_rows(k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let rows = c.len() / n.max(1);
    for i in 0..rows {
        let c_row = &mut c[i * n..(i + 1) * n];
        let a_row = &a[i * k..(i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
}

/// `c = a^T[m,k] * b[k,n]` where `a` is stored as `[k, m]` (used by the
/// backward passes without materializing transposes).
///
/// Rows of `C` are partitioned across threads like [`gemm`]; the per-element
/// reduction order over `k` is ascending in every split, so results are
/// bit-deterministic.
pub fn gemm_at_b(m: usize, k: usize, n: usize, a_t: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a_t.len(), k * m, "A^T length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    par_rows(m, n, m * k * n, c, |row0, c_chunk| {
        let rows = c_chunk.len().checked_div(n).unwrap_or(0);
        for i in 0..rows {
            let c_row = &mut c_chunk[i * n..(i + 1) * n];
            for kk in 0..k {
                let aki = a_t[kk * m + row0 + i];
                if aki == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                    *cj += aki * bj;
                }
            }
        }
    });
}

/// `c = a[m,k] * b^T[k,n]` where `b` is stored as `[n, k]`.
pub fn gemm_a_bt(m: usize, k: usize, n: usize, a: &[f32], b_t: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b_t.len(), n * k, "B^T length");
    assert_eq!(c.len(), m * n, "C length");
    par_rows(m, n, m * k * n, c, |row0, c_chunk| {
        let rows = c_chunk.len().checked_div(n).unwrap_or(0);
        for i in 0..rows {
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for j in 0..n {
                let b_row = &b_t[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                c_chunk[i * n + j] += acc;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn rand_vec(n: usize, rng: &mut Prng) -> Vec<f32> {
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = Prng::seed(1);
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 2, 9), (1, 16, 1)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            let want = naive(m, k, n, &a, &b);
            for (g, w) in c.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn matches_naive_parallel_sizes() {
        let mut rng = Prng::seed(2);
        let (m, k, n) = (97, 33, 41); // big enough to engage threading
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        let want = naive(m, k, n, &a, &b);
        for (g, w) in c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3);
        }
    }

    #[test]
    fn parallel_is_deterministic() {
        let mut rng = Prng::seed(3);
        let (m, k, n) = (128, 64, 32);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c1);
        gemm(m, k, n, &a, &b, &mut c2);
        assert_eq!(c1, c2, "same split → bitwise identical");
    }

    #[test]
    fn accumulates_into_c() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 0.0, 0.0, 2.0];
        let mut c = vec![10.0f32; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![12.0, 10.0, 10.0, 12.0]);
    }

    #[test]
    fn degenerate_shapes() {
        // m = 0: no output rows; every kernel must accept empty C.
        let mut c: Vec<f32> = vec![];
        gemm(0, 3, 4, &[], &[0.0; 12], &mut c);
        gemm_at_b(0, 3, 4, &[], &[0.0; 12], &mut c);
        gemm_a_bt(0, 3, 4, &[], &[0.0; 12], &mut c);
        assert!(c.is_empty());

        // k = 0: an empty reduction adds nothing; C keeps its base values.
        let mut c = vec![7.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![7.0; 6]);
        gemm_at_b(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![7.0; 6]);
        gemm_a_bt(2, 0, 3, &[], &[0.0; 0], &mut c);
        assert_eq!(c, vec![7.0; 6]);

        // n = 1: single-column output exercises the row-slicing edges.
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2, 3]
        let b = [1.0f32, -1.0, 2.0]; // [3, 1]
        let mut c = vec![0.0f32; 2];
        gemm(2, 3, 1, &a, &b, &mut c);
        assert_eq!(c, vec![5.0, 11.0]);
        // a^T stored [3, 2]
        let a_t = [1.0f32, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut c = vec![0.0f32; 2];
        gemm_at_b(2, 3, 1, &a_t, &b, &mut c);
        assert_eq!(c, vec![5.0, 11.0]);
        // b^T stored [1, 3]
        let b_t = [1.0f32, -1.0, 2.0];
        let mut c = vec![0.0f32; 2];
        gemm_a_bt(2, 3, 1, &a, &b_t, &mut c);
        assert_eq!(c, vec![5.0, 11.0]);
    }

    #[test]
    fn transposed_parallel_sizes_match_naive() {
        // Big enough to engage the row partitioner in the transposed kernels.
        let mut rng = Prng::seed(5);
        let (m, k, n) = (96, 40, 48);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let want = naive(m, k, n, &a, &b);
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_at_b(m, k, n, &a_t, &b, &mut c);
        for (g, w) in c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3);
        }
        let mut b_t = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                b_t[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_a_bt(m, k, n, &a, &b_t, &mut c);
        for (g, w) in c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3);
        }
    }

    #[test]
    fn transposed_variants_match() {
        let mut rng = Prng::seed(4);
        let (m, k, n) = (6, 5, 7);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let want = naive(m, k, n, &a, &b);

        // a^T stored [k, m]
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_at_b(m, k, n, &a_t, &b, &mut c);
        for (g, w) in c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4);
        }

        // b^T stored [n, k]
        let mut b_t = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                b_t[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_a_bt(m, k, n, &a, &b_t, &mut c);
        for (g, w) in c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4);
        }
    }

    #[test]
    fn par_map_preserves_order_at_every_scale() {
        // Serial path (below the spawn threshold), and parallel path with a
        // count that does not divide evenly across threads.
        for n in [0usize, 1, 3, 7, 64, 1001] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map_indexed(&items, 2, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(out.len(), n);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * 3 + 1);
            }
        }
    }
}
