//! Blocked, thread-parallel single-precision matrix multiplication.
//!
//! `C[M,N] += A[M,K] * B[K,N]`, row-major. The kernel iterates `i-k-j` with
//! a register accumulator broadcast of `A[i,k]`, which vectorizes well and
//! keeps the `j` loop streaming over contiguous `B`/`C` rows. Rows of `C`
//! are split statically across threads, so results are bit-deterministic
//! regardless of thread count.

/// Minimum per-thread row count before threads are spawned (small problems
/// run single-threaded to avoid spawn overhead).
const PAR_MIN_ROWS: usize = 32;

/// Minimum multiply-accumulate count before threading pays for itself.
const PAR_MIN_WORK: usize = 1 << 20;

/// Cached `available_parallelism` — the std call re-reads cgroup files on
/// every invocation, which costs ~1 ms inside containers.
fn thread_count() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    })
}

/// `c = a[m,k] * b[k,n]` (c must be zeroed or hold the accumulation base).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    let threads = thread_count();
    if m < PAR_MIN_ROWS || m * k * n < PAR_MIN_WORK || threads <= 1 {
        gemm_rows(k, n, a, b, c);
        return;
    }
    let rows_per = m.div_ceil(threads).max(PAR_MIN_ROWS / 2);
    std::thread::scope(|s| {
        let mut c_rest = c;
        let mut a_rest = a;
        let mut handles = Vec::new();
        loop {
            let rows = rows_per.min(c_rest.len() / n);
            if rows == 0 {
                break;
            }
            let (c_chunk, c_next) = c_rest.split_at_mut(rows * n);
            let (a_chunk, a_next) = a_rest.split_at(rows * k);
            handles.push(s.spawn(move || gemm_rows(k, n, a_chunk, b, c_chunk)));
            c_rest = c_next;
            a_rest = a_next;
        }
        for h in handles {
            h.join().expect("gemm worker panicked");
        }
    });
}

/// Single-threaded kernel over a row block of `A`/`C`.
fn gemm_rows(k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let rows = c.len() / n.max(1);
    for i in 0..rows {
        let c_row = &mut c[i * n..(i + 1) * n];
        let a_row = &a[i * k..(i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
}

/// `c = a^T[m,k] * b[k,n]` where `a` is stored as `[k, m]` (used by the
/// backward passes without materializing transposes).
pub fn gemm_at_b(m: usize, k: usize, n: usize, a_t: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a_t.len(), k * m, "A^T length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    for kk in 0..k {
        let a_row = &a_t[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                *cj += aki * bj;
            }
        }
    }
}

/// `c = a[m,k] * b^T[k,n]` where `b` is stored as `[n, k]`.
pub fn gemm_a_bt(m: usize, k: usize, n: usize, a: &[f32], b_t: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b_t.len(), n * k, "B^T length");
    assert_eq!(c.len(), m * n, "C length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b_t[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn rand_vec(n: usize, rng: &mut Prng) -> Vec<f32> {
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = Prng::seed(1);
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 2, 9), (1, 16, 1)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            let want = naive(m, k, n, &a, &b);
            for (g, w) in c.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn matches_naive_parallel_sizes() {
        let mut rng = Prng::seed(2);
        let (m, k, n) = (97, 33, 41); // big enough to engage threading
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        let want = naive(m, k, n, &a, &b);
        for (g, w) in c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3);
        }
    }

    #[test]
    fn parallel_is_deterministic() {
        let mut rng = Prng::seed(3);
        let (m, k, n) = (128, 64, 32);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c1);
        gemm(m, k, n, &a, &b, &mut c2);
        assert_eq!(c1, c2, "same split → bitwise identical");
    }

    #[test]
    fn accumulates_into_c() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 0.0, 0.0, 2.0];
        let mut c = vec![10.0f32; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![12.0, 10.0, 10.0, 12.0]);
    }

    #[test]
    fn transposed_variants_match() {
        let mut rng = Prng::seed(4);
        let (m, k, n) = (6, 5, 7);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let want = naive(m, k, n, &a, &b);

        // a^T stored [k, m]
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_at_b(m, k, n, &a_t, &b, &mut c);
        for (g, w) in c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4);
        }

        // b^T stored [n, k]
        let mut b_t = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                b_t[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_a_bt(m, k, n, &a, &b_t, &mut c);
        for (g, w) in c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4);
        }
    }
}
