//! Posit-domain GEMM: decode-once operand planes with exact quire
//! accumulation.
//!
//! The paper's claim is that low-precision posit training holds up when dot
//! products accumulate *exactly* (the EMAC of Deep Positron): every product
//! `P(a)·P(b)` lands in a wide fixed-point accumulator and the sum is
//! rounded to a posit only once, on store. The naive way to get there is to
//! call [`posit::Quire::add_product`] per multiply-accumulate, which decodes
//! both code words every time — `O(M·N·K)` decodes. The kernels here instead
//! unpack each operand element once into an `(sign, scale, fraction)`
//! [`PositPlane`] and feed raw significand products to the accumulator —
//! `O(M·K + K·N)` decodes, zero per-MAC decode work.
//!
//! Three compounding optimisations keep the per-MAC cost near the integer
//! multiply it fundamentally is:
//!
//! * **narrow accumulator** — for formats whose whole product range fits an
//!   `i128` (every format the paper trains with: posit(8,es), posit(16,1)),
//!   dot products accumulate in a register-resident [`posit::NarrowQuire`]
//!   instead of the heap-allocated limb array, with a once-per-call
//!   eligibility check (`4·max_scale + 2·margin + 2 + ⌈log2 K⌉ ≤ 127`)
//!   that falls back to the wide [`Quire`] otherwise — bit-identically;
//! * **decode LUTs** — ≤8-bit formats decode operand planes through a
//!   256-entry [`Unpacked`] table and round back to f32 on store through
//!   [`posit::lut::to_f32_lut`], replacing per-element bit-twiddling;
//! * **register-blocked tiles** — the kernels pack both operands into
//!   contiguous row-major panels (`A` rows, `B` columns) and run an
//!   `MR×NR` micro-kernel whose accumulators stay in registers across the
//!   whole `K` loop, so operand elements stream linearly and each loaded
//!   element feeds `MR` or `NR` multiplies.
//!
//! The kernel family mirrors the f32 entry points in [`crate::gemm`]
//! (`gemm`, `gemm_at_b`, `gemm_a_bt`) with identical shape conventions and
//! the same static row partitioner (now on the persistent worker pool), so
//! the `nn` layers can swap backends without reshaping anything. Exactness
//! makes all of this bit-transparent: narrow vs wide, tiled vs scalar and
//! serial vs pooled all compute the same exact sum and round it once, which
//! the exhaustive cross-checks in `tests/posit_gemm_exhaustive.rs` pin
//! against exact rational arithmetic.

use crate::gemm::par_rows;
use posit::{NarrowQuire, PositFormat, PositValue, Quire, Rounding};
use std::sync::OnceLock;

/// Cached handles for the kernel-path counters (`tensor.*` namespace in
/// the global [`posit_obs::Registry`]). Which fast path fired — narrow vs
/// wide accumulator, SWAR vs LUT vs bit-twiddle decode, K-strip batching —
/// is invisible in the results (all paths are bit-identical by
/// construction), so these counters are the only way to see what actually
/// ran. Recording is per *call* (or one aggregated add per row block),
/// never per MAC, and every site checks [`posit_obs::enabled`] first, so
/// the disabled cost on the hot path is a relaxed atomic load.
struct GemmObs {
    narrow_calls: posit_obs::Counter,
    wide_calls: posit_obs::Counter,
    kstrip_calls: posit_obs::Counter,
    decode_lut8: posit_obs::Counter,
    decode_lut2: posit_obs::Counter,
    decode_swar: posit_obs::Counter,
    decode_twiddle: posit_obs::Counter,
    kstrips_flushed: posit_obs::Counter,
    bucket_touches: posit_obs::Counter,
    quire_nar: posit_obs::Counter,
}

fn gemm_obs() -> &'static GemmObs {
    static OBS: OnceLock<GemmObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = posit_obs::Registry::global();
        GemmObs {
            narrow_calls: r.counter("tensor.gemm.narrow_calls"),
            wide_calls: r.counter("tensor.gemm.wide_calls"),
            kstrip_calls: r.counter("tensor.gemm.kstrip_calls"),
            decode_lut8: r.counter("tensor.plane.decode.lut8_elems"),
            decode_lut2: r.counter("tensor.plane.decode.lut2_elems"),
            decode_swar: r.counter("tensor.plane.decode.swar_elems"),
            decode_twiddle: r.counter("tensor.plane.decode.twiddle_elems"),
            kstrips_flushed: r.counter("tensor.gemm.kstrips_flushed"),
            bucket_touches: r.counter("tensor.gemm.bucket_touches"),
            quire_nar: r.counter("tensor.gemm.quire_nar_outputs"),
        }
    })
}

/// Which decode route produced a plane's elements.
#[derive(Clone, Copy)]
enum DecodeRoute {
    /// 256-entry byte LUT (`n ≤ 8` formats).
    Lut8,
    /// Two-level `decode_lut2` tables (`8 < n ≤ 16`).
    Lut2,
    /// SWAR 8-lane packed-byte gather.
    Swar,
    /// Bit-twiddled scalar reference decoder.
    Twiddle,
}

/// Count `n` elements decoded through `route` (no-op while disabled).
fn note_decode(route: DecodeRoute, n: usize) {
    if posit_obs::enabled() {
        let o = gemm_obs();
        let c = match route {
            DecodeRoute::Lut8 => &o.decode_lut8,
            DecodeRoute::Lut2 => &o.decode_lut2,
            DecodeRoute::Swar => &o.decode_swar,
            DecodeRoute::Twiddle => &o.decode_twiddle,
        };
        c.add(n as u64);
    }
}

/// Sentinel scale marking a NaR element in a plane (no finite posit scale
/// gets anywhere near `i32::MIN`).
const NAR_SCALE: i32 = i32::MIN;

/// One decoded posit operand: `value = ±2^(scale-63) * sig` with the
/// implicit leading one at bit 63 of `sig`.
///
/// Zero is `sig == 0`; NaR is `sig == 0` with `scale == i32::MIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Unpacked {
    /// 64-bit significand (bit 63 set for finite non-zero values).
    pub sig: u64,
    /// Effective binary exponent, or the NaR sentinel.
    pub scale: i32,
    /// True for negative values.
    pub neg: bool,
    /// Explicit (always-zero) tail padding, pinned after `neg` by the C
    /// layout: with every byte defined and the zero bytes contiguous, the
    /// compiler stores a plane element as two plain words instead of
    /// field-by-field writes plus an undef-padding copy. Three scalar
    /// fields, not `[u8; 3]` — the array form defeats scalar replacement
    /// and reintroduces a stack round-trip in the decode loops.
    _pad0: u8,
    _pad1: u8,
    _pad2: u8,
}

const ZERO_ELEM: Unpacked = Unpacked {
    sig: 0,
    scale: 0,
    neg: false,
    _pad0: 0,
    _pad1: 0,
    _pad2: 0,
};

impl Unpacked {
    /// The multiplicative identity in element form — the `y` operand that
    /// turns a multiply-accumulate into a plain accumulate (`x · 1`), used
    /// by the gradient buffers to sum posit values exactly.
    pub const ONE: Unpacked = Unpacked {
        sig: 1 << 63,
        scale: 0,
        neg: false,
        _pad0: 0,
        _pad1: 0,
        _pad2: 0,
    };

    /// True iff this element is the NaR sentinel.
    pub fn is_nar(&self) -> bool {
        self.sig == 0 && self.scale == NAR_SCALE
    }
}

/// The decoded value in the kernels' element form, with an optional Eq. 2
/// scale shift folded in — the single definition both the direct decode
/// path and the LUT build go through.
#[inline(always)]
fn unpack(v: PositValue, scale_exp: i32) -> Unpacked {
    match v {
        PositValue::Zero => ZERO_ELEM,
        PositValue::NaR => Unpacked {
            sig: 0,
            scale: NAR_SCALE,
            neg: false,
            _pad0: 0,
            _pad1: 0,
            _pad2: 0,
        },
        PositValue::Finite(d) => Unpacked {
            sig: d.significand(),
            scale: d.scale + scale_exp,
            neg: d.sign.is_negative(),
            _pad0: 0,
            _pad1: 0,
            _pad2: 0,
        },
    }
}

fn decode_one(fmt: PositFormat, b: u64, scale_exp: i32) -> Unpacked {
    unpack(fmt.decode(b), scale_exp)
}

/// Fold a plane's Eq. 2 scale shift into one table-gathered element.
/// Finite non-zero values shift; zero keeps its canonical form and NaR
/// keeps its sentinel (compiles to a conditional move, no branch in the
/// lane loop).
#[inline]
fn shift_scale(mut u: Unpacked, scale_exp: i32) -> Unpacked {
    if u.sig != 0 {
        u.scale += scale_exp;
    }
    u
}

/// SWAR lane-group decode of `n ≤ 8` code words: split each u64 group into
/// eight 8-bit lanes, gather every lane through the 256-entry table and
/// fold the scale shift per lane. The table is indexed by the raw byte —
/// it is built by `decode`, which masks to `n` bits, so out-of-range lane
/// values alias their masked code word exactly like a direct decode.
#[inline]
fn decode_lanes8(lut: &[Unpacked; 256], word: u64, scale_exp: i32, out: &mut Vec<Unpacked>) {
    // One whole-group append, not eight pushes: `extend_from_slice` pays a
    // single capacity check per lane group, which keeps the gather loop at
    // load/shift/store throughput.
    let group: [Unpacked; 8] = std::array::from_fn(|lane| {
        shift_scale(lut[(word >> (8 * lane)) as u8 as usize], scale_exp)
    });
    out.extend_from_slice(&group);
}

/// The 256-entry [`Unpacked`] decode table of a narrow (`n ≤ 8`) format:
/// [`posit::lut::decode_lut`] re-shaped into the kernels' flat 16-byte
/// element form (worth its own cached copy — the hot loops load it once
/// per element). `None` for wider formats. A table hit is identical to a
/// direct decode by construction: both routes run [`unpack`] over the same
/// bit-exact decoder output.
fn unpacked_lut(fmt: PositFormat) -> Option<&'static [Unpacked]> {
    type Slot = OnceLock<Vec<Unpacked>>;
    #[allow(clippy::declare_interior_mutable_const)]
    const SLOT: Slot = OnceLock::new();
    #[allow(clippy::declare_interior_mutable_const)]
    const ROW: [Slot; 5] = [SLOT; 5];
    static LUTS: [[Slot; 5]; 7] = [ROW; 7]; // n in 2..=8 × es in 0..=4
    let decoded = posit::lut::decode_lut(fmt)?;
    let slot = &LUTS[(fmt.n() - 2) as usize][fmt.es() as usize];
    Some(
        slot.get_or_init(|| decoded.iter().map(|&v| unpack(v, 0)).collect())
            .as_slice(),
    )
}

/// A matrix tile decoded once into unpacked posit elements.
///
/// Built from f32 data (quantize + decode) or from raw code words (decode
/// only); consumed by the [`PositGemm`] kernels, which never decode again.
#[derive(Debug, Clone)]
pub struct PositPlane {
    fmt: PositFormat,
    /// Eq. 2 scale exponent folded into the element scales (widens the
    /// quire the kernels allocate; 0 for unshifted planes).
    scale_exp: i32,
    elems: Vec<Unpacked>,
}

impl PositPlane {
    /// Decode a slice of code words (low `n` bits of each `u64`).
    ///
    /// Narrow (`n ≤ 8`) formats gather through the same 256-entry
    /// byte-indexed table the SWAR lane groups of [`PositPlane::from_packed`]
    /// use; medium (`8 < n ≤ 16`) formats decode through the two-level
    /// [`posit::lut::decode_lut2`] tables. Both routes are pinned
    /// bit-identical to [`PositPlane::from_bits_scalar`].
    pub fn from_bits(fmt: PositFormat, bits: &[u64]) -> PositPlane {
        let elems = if let Some(lut) = unpacked_lut(fmt) {
            let lut: &[Unpacked; 256] = lut.try_into().expect("decode LUTs have 256 entries");
            note_decode(DecodeRoute::Lut8, bits.len());
            // Exact-size `map`/`collect`: no per-element capacity checks,
            // and the low-byte index aliases out-of-range words to their
            // masked code exactly like the lane gather in `from_packed`.
            bits.iter().map(|&b| lut[b as u8 as usize]).collect()
        } else if let Some(lut2) = posit::lut::decode_lut2(fmt) {
            // The view copies the table's scalar fields out of `&Lut2`, and
            // the `map`/`collect` fold (exact-size, no per-element capacity
            // checks) runs `decode` over it.
            let lut2 = lut2.view();
            note_decode(DecodeRoute::Lut2, bits.len());
            bits.iter().map(|&b| unpack(lut2.decode(b), 0)).collect()
        } else {
            note_decode(DecodeRoute::Twiddle, bits.len());
            bits.iter().map(|&b| decode_one(fmt, b, 0)).collect()
        };
        PositPlane {
            fmt,
            scale_exp: 0,
            elems,
        }
    }

    /// [`PositPlane::from_bits`] through the bit-twiddled reference decoder
    /// only — no table gathers, no lane groups. This is the scalar oracle
    /// the SWAR and two-level-LUT decode paths are tested against (and the
    /// `plane_decode/twiddle` bench rows).
    pub fn from_bits_scalar(fmt: PositFormat, bits: &[u64]) -> PositPlane {
        note_decode(DecodeRoute::Twiddle, bits.len());
        PositPlane {
            fmt,
            scale_exp: 0,
            elems: bits.iter().map(|&b| decode_one(fmt, b, 0)).collect(),
        }
    }

    /// Decode a packed storage plane, folding its Eq. 2 scale exponent into
    /// the element scales — the decode-once entry point for posit-resident
    /// tensors: `value = P(x/Sf)·Sf` arrives in the kernel *exactly*, with
    /// no f32 staging buffer and no re-rounding onto the unshifted grid.
    pub fn from_packed(
        fmt: PositFormat,
        bits: &crate::storage::PackedBits,
        scale_exp: i32,
    ) -> PositPlane {
        let elems = if let (Some(lut), Some(bytes)) = (unpacked_lut(fmt), bits.as_u8()) {
            // SWAR fast path: read the packed plane eight code words at a
            // time as little-endian u64 lane groups.
            let lut: &[Unpacked; 256] = lut.try_into().expect("decode LUTs have 256 entries");
            note_decode(DecodeRoute::Swar, bytes.len());
            let mut elems = Vec::with_capacity(bytes.len());
            let mut groups = bytes.chunks_exact(8);
            for group in groups.by_ref() {
                let word = u64::from_le_bytes(group.try_into().expect("chunk of 8"));
                decode_lanes8(lut, word, scale_exp, &mut elems);
            }
            for &b in groups.remainder() {
                elems.push(shift_scale(lut[b as usize], scale_exp));
            }
            elems
        } else if let (Some(lut2), Some(words)) = (posit::lut::decode_lut2(fmt), bits.as_u16()) {
            let lut2 = lut2.view();
            note_decode(DecodeRoute::Lut2, words.len());
            words
                .iter()
                .map(|&w| unpack(lut2.decode(w as u64), scale_exp))
                .collect()
        } else {
            note_decode(DecodeRoute::Twiddle, bits.len());
            bits.iter().map(|b| decode_one(fmt, b, scale_exp)).collect()
        };
        PositPlane {
            fmt,
            scale_exp,
            elems,
        }
    }

    /// [`PositPlane::from_packed`] through the bit-twiddled reference
    /// decoder only — the scalar oracle for the packed-lane paths.
    pub fn from_packed_scalar(
        fmt: PositFormat,
        bits: &crate::storage::PackedBits,
        scale_exp: i32,
    ) -> PositPlane {
        note_decode(DecodeRoute::Twiddle, bits.len());
        PositPlane {
            fmt,
            scale_exp,
            elems: bits.iter().map(|b| decode_one(fmt, b, scale_exp)).collect(),
        }
    }

    /// Quantize f32 data to the format under `rounding`, then decode once.
    ///
    /// This is the `P(·)` edge of the paper's Fig. 3 fused with the operand
    /// unpack: the plane holds exactly the values a quantize→store→reload
    /// round trip would produce, without materializing the f32 copy.
    pub fn from_f32(fmt: PositFormat, xs: &[f32], rounding: Rounding) -> PositPlane {
        let bits: Vec<u64> = xs.iter().map(|&x| fmt.from_f32(x, rounding)).collect();
        PositPlane::from_bits(fmt, &bits)
    }

    /// The format the plane was decoded from.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// The Eq. 2 scale exponent folded into the element scales.
    pub fn scale_exp(&self) -> i32 {
        self.scale_exp
    }

    /// Extra quire headroom (bits) this plane's scale shift requires.
    pub fn quire_margin(&self) -> u32 {
        self.scale_exp.unsigned_abs()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True iff the plane holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The unpacked elements (row-major, caller-defined shape).
    pub fn elems(&self) -> &[Unpacked] {
        &self.elems
    }

    /// Render back to f32 (each element is an exactly representable posit).
    pub fn to_f32(&self) -> Vec<f32> {
        self.elems
            .iter()
            .map(|e| {
                if e.sig == 0 {
                    if e.scale == NAR_SCALE {
                        f32::NAN
                    } else {
                        0.0
                    }
                } else {
                    let m = e.sig as f64 * (e.scale as f64 - 63.0).exp2();
                    if e.neg {
                        -m as f32
                    } else {
                        m as f32
                    }
                }
            })
            .collect()
    }
}

/// Transpose an `[rows, cols]` element tile into `[cols, rows]` — the
/// panel-packing step that turns every kernel's strided operand walk into
/// two contiguous streams.
fn transpose_elems(src: &[Unpacked], rows: usize, cols: usize) -> Vec<Unpacked> {
    debug_assert_eq!(src.len(), rows * cols);
    let mut out = vec![ZERO_ELEM; src.len()];
    for r in 0..rows {
        let src_row = &src[r * cols..(r + 1) * cols];
        for (c, &e) in src_row.iter().enumerate() {
            out[c * rows + r] = e;
        }
    }
    out
}

/// Rows per register tile of the micro-kernel.
const MR: usize = 2;
/// Columns per register tile of the micro-kernel.
const NR: usize = 4;

/// One multiply-accumulate into a narrow accumulator, with the plane
/// conventions for zero (skip) and NaR (absorb).
#[inline(always)]
fn mac_narrow(q: &mut NarrowQuire, x: Unpacked, y: Unpacked) {
    if x.sig == 0 || y.sig == 0 {
        if x.scale == NAR_SCALE || y.scale == NAR_SCALE {
            q.set_nar();
        }
        return;
    }
    q.add_product_parts(
        x.neg != y.neg,
        x.scale + y.scale,
        (x.sig as u128) * (y.sig as u128),
    );
}

/// Exact dot product of two contiguous element runs in a narrow
/// accumulator (the tail path of the micro-kernel; same math, no tiling).
#[inline]
fn dot_narrow(proto: NarrowQuire, a: &[Unpacked], b: &[Unpacked]) -> NarrowQuire {
    let mut q = proto;
    for (&x, &y) in a.iter().zip(b) {
        mac_narrow(&mut q, x, y);
    }
    q
}

/// K-strip length of the batched micro-kernel: products are bucketed by
/// `scale_sum` for this many `k` steps, then flushed into the accumulators
/// with one `i128` shift-add per touched bucket
/// ([`NarrowQuire::add_group`]). The bucket sums stay exact for any strip
/// the narrow accumulator's own K budget admits (an `i64` bucket holds at
/// least `2^32` worst-case `i32` fraction products, far above every
/// eligible budget), so the strip is sized to amortize the flush scan to
/// noise — most kernel-sized reductions run as a single strip and flush
/// once per output.
const KSTRIP: usize = 8192;

/// An operand panel narrowed for the K-strip batched micro-kernel: the
/// bit-63-aligned significands drop their guaranteed-zero low bits into
/// signed `i32` fraction words, scales become bucket indices, and the NaR
/// sentinels lift out into per-row flags (NaR absorbs the whole reduction
/// regardless of its partner, so a flag per panel row replaces the per-MAC
/// check).
struct BatchPanel {
    /// Per element: the signed fraction word `±(sig >> (64-width))` (0 for
    /// zero and NaR elements). Kept separate from the scale byte so the
    /// micro-kernel's lane reads are plain sign-extending loads.
    sig: Vec<i32>,
    /// Per element: the bucket-ready scale byte. The A panel carries the
    /// `-emin` bias, so `a.sc ⊞ b.sc` (wrapping byte add) equals the
    /// bucket index for every finite pair — the index is provably in
    /// `[0, 126)`, so the mod-256 wrap of B's negative scales cancels
    /// exactly. Zero/NaR elements store an always-in-range dummy scale —
    /// their product is 0.
    sc: Vec<u8>,
    /// Per panel row: true iff any element is NaR.
    nar: Vec<bool>,
    /// Per row × strip: min stored scale over finite non-zero elements
    /// (`> smax` sentinel when the strip row is all zero/NaR) — bounds the
    /// flush scan to the buckets a strip actually touched.
    smin: Vec<i32>,
    /// Per row × strip: max stored scale over finite non-zero elements.
    smax: Vec<i32>,
    /// Strip count (`⌈k / KSTRIP⌉`).
    strips: usize,
}

const SMIN_EMPTY: i32 = i32::MAX / 2;
const SMAX_EMPTY: i32 = i32::MIN / 2;

/// Bucket-array slots per accumulator in the batched kernel. Narrow
/// eligibility bounds the bucket count by `4·max_scale + 2·margin + 1 ≤
/// 126`, so a power-of-two 128 always fits and lets the hot loop index
/// with a mask instead of a bounds check.
const BUCKET_SLOTS: usize = 128;

/// Rows per register tile of the *batched* micro-kernel (wider than the
/// scalar tile: its per-`k` state is a handful of `i32`s, not `i128`
/// accumulators, so more rows amortize the B-panel loads further).
const MRB: usize = 4;
/// Columns per register tile of the batched micro-kernel.
const NRB: usize = 4;

/// One batched MAC: multiply the fraction words, index the bucket by the
/// wrapping byte sum of the scale bytes. The mask is a proven no-op for
/// in-range panels (`idx < BUCKET_SLOTS`, asserted in debug builds at
/// flush time); it exists to eliminate the bounds check in the hot loop.
#[inline(always)]
fn batch_mac(bucket: &mut [i64; BUCKET_SLOTS], xs: i32, xe: u8, ys: i32, ye: u8) {
    let idx = xe.wrapping_add(ye) as usize & (BUCKET_SLOTS - 1);
    bucket[idx] += xs.wrapping_mul(ys) as i64;
}

impl BatchPanel {
    /// Narrow a `[rows, k]` element panel. `bias` is subtracted from every
    /// stored scale (`emin` for the A panel, 0 for B); `zero_scale` is the
    /// raw scale recorded for zero/NaR elements — any value a finite
    /// element could legally carry keeps their (zero) products in range.
    fn build(
        src: &[Unpacked],
        rows: usize,
        k: usize,
        width: u32,
        bias: i32,
        zero_scale: i32,
    ) -> BatchPanel {
        debug_assert_eq!(src.len(), rows * k);
        let strips = k.div_ceil(KSTRIP).max(1);
        let mut sig = Vec::with_capacity(rows * k);
        let mut sc = Vec::with_capacity(rows * k);
        let mut nar = vec![false; rows];
        let mut smin = vec![SMIN_EMPTY; rows * strips];
        let mut smax = vec![SMAX_EMPTY; rows * strips];
        for r in 0..rows {
            for (t, e) in src[r * k..(r + 1) * k].iter().enumerate() {
                if e.sig == 0 {
                    nar[r] |= e.scale == NAR_SCALE;
                    sig.push(0);
                    sc.push((zero_scale - bias) as u8);
                } else {
                    let s = (e.sig >> (64 - width)) as i32;
                    let b = e.scale - bias;
                    sig.push(if e.neg { -s } else { s });
                    sc.push(b as u8);
                    let slot = r * strips + t / KSTRIP;
                    smin[slot] = smin[slot].min(b);
                    smax[slot] = smax[slot].max(b);
                }
            }
        }
        BatchPanel {
            sig,
            sc,
            nar,
            smin,
            smax,
            strips,
        }
    }
}

/// Runtime selection of the K-strip batched micro-kernel (see
/// [`PositGemm::kstrip`]). Every mode computes bit-identical results — the
/// batched path groups *exact* integer terms, so only the order of the
/// exact sum changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KStripMode {
    /// Use the batched kernel whenever the narrow accumulator is active
    /// and the reduction is deep enough to amortize panel narrowing.
    #[default]
    Auto,
    /// Use the batched kernel whenever the narrow accumulator is active
    /// (tests and benches pinning the path, regardless of depth).
    Force,
    /// Never batch — the per-element scalar micro-kernel, kept as the
    /// bit-exact oracle.
    Off,
}

/// Minimum reduction depth at which [`KStripMode::Auto`] batches: shallow
/// reductions (small convolutions — `conv1` has `k = 25`) flush buckets so
/// often that the per-MAC savings drown in flush scans, and the scalar
/// tile wins. `conv2` (`k = 150`) already gains ~1.6× from batching.
const KSTRIP_AUTO_MIN_K: usize = 48;

/// The posit GEMM kernel family: exact accumulation over [`PositPlane`]
/// operands, one rounding per output element.
///
/// `C += round(Σ_k a·b)`: like the f32 kernels, outputs accumulate into `C`
/// so the backward passes can sum gradient contributions across calls; the
/// posit-domain rounding happens once per GEMM, on store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositGemm {
    fmt: PositFormat,
    rounding: Rounding,
    force_wide: bool,
    kstrip: KStripMode,
}

impl PositGemm {
    /// A kernel for `fmt`, rounding once per output element with `rounding`.
    ///
    /// [`Rounding::Stochastic`] needs a per-element random word the kernel
    /// does not carry; it degrades to round-to-nearest-even.
    pub fn new(fmt: PositFormat, rounding: Rounding) -> PositGemm {
        let rounding = if rounding == Rounding::Stochastic {
            Rounding::NearestEven
        } else {
            rounding
        };
        PositGemm {
            fmt,
            rounding,
            force_wide: false,
            kstrip: KStripMode::Auto,
        }
    }

    /// Force the heap-allocated wide [`Quire`] even when the format is
    /// narrow-eligible (builder style). Results are bit-identical either
    /// way; this exists so tests and benches can pin the fallback path.
    pub fn wide_accumulator(mut self, force_wide: bool) -> PositGemm {
        self.force_wide = force_wide;
        self
    }

    /// Select how the K-strip batched micro-kernel is chosen (builder
    /// style). Results are bit-identical in every mode.
    pub fn kstrip(mut self, mode: KStripMode) -> PositGemm {
        self.kstrip = mode;
        self
    }

    /// True iff a GEMM with reduction depth `k` over planes carrying
    /// `margin` total scale-shift bits would take the narrow-accumulator
    /// fast path (see [`posit::NarrowQuire::try_new`] for the accounting).
    pub fn uses_narrow_path(&self, margin: u32, k: usize) -> bool {
        !self.force_wide && NarrowQuire::try_new(self.fmt, margin, k).is_some()
    }

    /// True iff a GEMM with reduction depth `k` over planes carrying
    /// `margin` total scale-shift bits would run the K-strip batched
    /// micro-kernel (requires the narrow path; [`KStripMode`] then decides).
    pub fn uses_kstrip_path(&self, margin: u32, k: usize) -> bool {
        self.uses_narrow_path(margin, k)
            && match self.kstrip {
                KStripMode::Auto => k >= KSTRIP_AUTO_MIN_K,
                KStripMode::Force => true,
                KStripMode::Off => false,
            }
    }

    /// The kernel's format.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// Unpack f32 data into an operand plane for this kernel's format.
    pub fn encode_plane(&self, xs: &[f32]) -> PositPlane {
        PositPlane::from_f32(self.fmt, xs, self.rounding)
    }

    /// Round an accumulated narrow dot to f32, through the store LUT when
    /// the format has one.
    #[inline]
    fn store_narrow(&self, q: &NarrowQuire, lut: Option<&[f32]>) -> f32 {
        if posit_obs::enabled() && q.is_nar() {
            gemm_obs().quire_nar.incr();
        }
        let code = q.to_posit(self.rounding, 0);
        match lut {
            Some(l) => l[code as usize],
            None => self.fmt.to_f32(code),
        }
    }

    /// The shared panel kernel: `c[rows, n] += round(dot(a_rows, b_cols))`
    /// over row-major `A` rows (`[m, k]`, already offset to this block) and
    /// row-major `B` columns (`[n, k]`).
    #[allow(clippy::too_many_arguments)]
    fn gemm_panels(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a_rows: &[Unpacked],
        b_cols: &[Unpacked],
        margin: u32,
        c: &mut [f32],
    ) {
        let kernel = *self;
        let narrow = if self.force_wide {
            None
        } else {
            NarrowQuire::try_new(self.fmt, margin, k)
        };
        let f32_lut = posit::lut::to_f32_lut(self.fmt);
        // Narrow both panels once per call when the K-strip batched kernel
        // is selected (the panels are shared read-only across row blocks).
        let batch = if narrow.is_some() && self.uses_kstrip_path(margin, k) {
            self.fmt
                .n()
                .checked_sub(2 + self.fmt.es())
                // The fraction words must multiply inside an i32 (2·width
                // ≤ 30); every format the paper trains with passes.
                .filter(|&w| (1..=15).contains(&w))
                .and_then(|width| {
                    let emin = 2 * self.fmt.min_scale() - margin as i32;
                    let buckets = (4 * self.fmt.max_scale() + 2 * margin as i32 + 1) as usize;
                    if buckets > BUCKET_SLOTS {
                        return None; // unreachable under narrow eligibility
                    }
                    let ap = BatchPanel::build(a_rows, m, k, width, emin, self.fmt.min_scale());
                    let bp = BatchPanel::build(b_cols, n, k, width, 0, 0);
                    Some((ap, bp, width, emin, buckets))
                })
        } else {
            None
        };
        if posit_obs::enabled() {
            let o = gemm_obs();
            if narrow.is_some() {
                o.narrow_calls.incr();
            } else {
                o.wide_calls.incr();
            }
            if batch.is_some() {
                o.kstrip_calls.incr();
            }
        }
        par_rows(m, n, m * k * n, c, |row0, c_chunk| {
            let rows = c_chunk.len().checked_div(n).unwrap_or(0);
            let a_block = &a_rows[row0 * k..(row0 + rows) * k];
            match (narrow, &batch) {
                (Some(proto), Some((ap, bp, width, emin, bc))) => kernel.block_batched(
                    proto, f32_lut, row0, rows, k, n, a_block, b_cols, ap, bp, *width, *emin, *bc,
                    c_chunk,
                ),
                (Some(proto), None) => {
                    kernel.block_narrow(proto, f32_lut, rows, k, n, a_block, b_cols, c_chunk)
                }
                (None, _) => {
                    kernel.block_wide(f32_lut, margin, rows, k, n, a_block, b_cols, c_chunk)
                }
            }
        });
    }

    /// K-strip batched fast path over one row block: the MR×NR register
    /// tile keeps `i64` *bucket* sums per `scale_sum` instead of an `i128`
    /// accumulator per MAC. Within a strip every product is a narrow `i32`
    /// multiply plus an indexed add; at the strip boundary each touched
    /// bucket flushes with **one** `i128` shift-add
    /// ([`NarrowQuire::add_group`]). Grouping exact integer terms never
    /// changes the sum, so the result is bit-identical to the scalar
    /// kernels; zero elements carry a zero fraction word (their adds are
    /// no-ops) and NaR lifts out into panel-row flags applied on store.
    #[allow(clippy::too_many_arguments)]
    fn block_batched(
        &self,
        proto: NarrowQuire,
        f32_lut: Option<&[f32]>,
        row0: usize,
        rows: usize,
        k: usize,
        n: usize,
        a: &[Unpacked],
        b_cols: &[Unpacked],
        ap: &BatchPanel,
        bp: &BatchPanel,
        width: u32,
        emin: i32,
        bc: usize,
        c: &mut [f32],
    ) {
        let strips = ap.strips;
        debug_assert_eq!(strips, bp.strips);
        debug_assert!(bc <= BUCKET_SLOTS);
        // Flush accounting stays in locals and posts one counter add per
        // row block; the `obs_on` tests sit in the flush scan, never in
        // the per-MAC strip loop.
        let obs_on = posit_obs::enabled();
        let mut strips_flushed = 0u64;
        let mut bucket_touches = 0u64;
        let mut buckets = [[0i64; BUCKET_SLOTS]; MRB * NRB];
        let mut i = 0;
        while i + MRB <= rows {
            let r0 = row0 + i;
            let a0s = &ap.sig[r0 * k..(r0 + 1) * k];
            let a1s = &ap.sig[(r0 + 1) * k..(r0 + 2) * k];
            let a2s = &ap.sig[(r0 + 2) * k..(r0 + 3) * k];
            let a3s = &ap.sig[(r0 + 3) * k..(r0 + 4) * k];
            let a0e = &ap.sc[r0 * k..(r0 + 1) * k];
            let a1e = &ap.sc[(r0 + 1) * k..(r0 + 2) * k];
            let a2e = &ap.sc[(r0 + 2) * k..(r0 + 3) * k];
            let a3e = &ap.sc[(r0 + 3) * k..(r0 + 4) * k];
            let a_nar = [ap.nar[r0], ap.nar[r0 + 1], ap.nar[r0 + 2], ap.nar[r0 + 3]];
            let mut j = 0;
            while j + NRB <= n {
                let b0s = &bp.sig[j * k..(j + 1) * k];
                let b1s = &bp.sig[(j + 1) * k..(j + 2) * k];
                let b2s = &bp.sig[(j + 2) * k..(j + 3) * k];
                let b3s = &bp.sig[(j + 3) * k..(j + 4) * k];
                let b0e = &bp.sc[j * k..(j + 1) * k];
                let b1e = &bp.sc[(j + 1) * k..(j + 2) * k];
                let b2e = &bp.sc[(j + 2) * k..(j + 3) * k];
                let b3e = &bp.sc[(j + 3) * k..(j + 4) * k];
                let mut acc = [[proto; NRB]; MRB];
                let mut t0 = 0;
                let mut strip = 0;
                while t0 < k {
                    let t1 = (t0 + KSTRIP).min(k);
                    let [bk00, bk01, bk02, bk03, bk10, bk11, bk12, bk13, bk20, bk21, bk22, bk23, bk30, bk31, bk32, bk33] =
                        &mut buckets;
                    for t in t0..t1 {
                        // Each lane read is one sign-extending (fraction)
                        // or zero-extending (scale byte) load; every lane
                        // then feeds NRB (or MRB) MACs.
                        let (x0s, x0e) = (a0s[t], a0e[t]);
                        let (x1s, x1e) = (a1s[t], a1e[t]);
                        let (x2s, x2e) = (a2s[t], a2e[t]);
                        let (x3s, x3e) = (a3s[t], a3e[t]);
                        let (y0s, y0e) = (b0s[t], b0e[t]);
                        let (y1s, y1e) = (b1s[t], b1e[t]);
                        let (y2s, y2e) = (b2s[t], b2e[t]);
                        let (y3s, y3e) = (b3s[t], b3e[t]);
                        batch_mac(bk00, x0s, x0e, y0s, y0e);
                        batch_mac(bk01, x0s, x0e, y1s, y1e);
                        batch_mac(bk02, x0s, x0e, y2s, y2e);
                        batch_mac(bk03, x0s, x0e, y3s, y3e);
                        batch_mac(bk10, x1s, x1e, y0s, y0e);
                        batch_mac(bk11, x1s, x1e, y1s, y1e);
                        batch_mac(bk12, x1s, x1e, y2s, y2e);
                        batch_mac(bk13, x1s, x1e, y3s, y3e);
                        batch_mac(bk20, x2s, x2e, y0s, y0e);
                        batch_mac(bk21, x2s, x2e, y1s, y1e);
                        batch_mac(bk22, x2s, x2e, y2s, y2e);
                        batch_mac(bk23, x2s, x2e, y3s, y3e);
                        batch_mac(bk30, x3s, x3e, y0s, y0e);
                        batch_mac(bk31, x3s, x3e, y1s, y1e);
                        batch_mac(bk32, x3s, x3e, y2s, y2e);
                        batch_mac(bk33, x3s, x3e, y3s, y3e);
                    }
                    for (r, acc_row) in acc.iter_mut().enumerate() {
                        let alo = ap.smin[(row0 + i + r) * strips + strip];
                        let ahi = ap.smax[(row0 + i + r) * strips + strip];
                        for (s, q) in acc_row.iter_mut().enumerate() {
                            let lo = alo + bp.smin[(j + s) * strips + strip];
                            let hi = ahi + bp.smax[(j + s) * strips + strip];
                            if lo > hi {
                                continue; // strip touched no bucket for this output
                            }
                            debug_assert!(lo >= 0 && (hi as usize) < bc);
                            if obs_on {
                                strips_flushed += 1;
                            }
                            let bk = &mut buckets[r * NRB + s];
                            for idx in lo as usize..=hi as usize {
                                let v = bk[idx & (BUCKET_SLOTS - 1)];
                                if v != 0 {
                                    if obs_on {
                                        bucket_touches += 1;
                                    }
                                    q.add_group(idx as i32 + emin, width, v);
                                    bk[idx & (BUCKET_SLOTS - 1)] = 0;
                                }
                            }
                        }
                    }
                    t0 = t1;
                    strip += 1;
                }
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    for (s, q) in acc_row.iter_mut().enumerate() {
                        if a_nar[r] || bp.nar[j + s] {
                            q.set_nar();
                        }
                        c[(i + r) * n + j + s] += self.store_narrow(q, f32_lut);
                    }
                }
                j += NRB;
            }
            while j < n {
                let b_run = &b_cols[j * k..(j + 1) * k];
                for r in 0..MRB {
                    let a_run = &a[(i + r) * k..(i + r + 1) * k];
                    c[(i + r) * n + j] +=
                        self.store_narrow(&dot_narrow(proto, a_run, b_run), f32_lut);
                }
                j += 1;
            }
            i += MRB;
        }
        while i < rows {
            let a_run = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_run = &b_cols[j * k..(j + 1) * k];
                c[i * n + j] += self.store_narrow(&dot_narrow(proto, a_run, b_run), f32_lut);
            }
            i += 1;
        }
        if obs_on {
            let o = gemm_obs();
            o.kstrips_flushed.add(strips_flushed);
            o.bucket_touches.add(bucket_touches);
        }
    }

    /// Narrow fast path over one row block: MR×NR register tiles with
    /// scalar edge loops. Every output element still accumulates its own
    /// exact sum in ascending-`k` order, so tiling is bit-transparent.
    #[allow(clippy::too_many_arguments)]
    fn block_narrow(
        &self,
        proto: NarrowQuire,
        f32_lut: Option<&[f32]>,
        rows: usize,
        k: usize,
        n: usize,
        a: &[Unpacked],
        b_cols: &[Unpacked],
        c: &mut [f32],
    ) {
        let mut i = 0;
        while i + MR <= rows {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let mut j = 0;
            while j + NR <= n {
                let b0 = &b_cols[j * k..(j + 1) * k];
                let b1 = &b_cols[(j + 1) * k..(j + 2) * k];
                let b2 = &b_cols[(j + 2) * k..(j + 3) * k];
                let b3 = &b_cols[(j + 3) * k..(j + 4) * k];
                let mut acc = [[proto; NR]; MR];
                for t in 0..k {
                    let av = [a0[t], a1[t]];
                    let bv = [b0[t], b1[t], b2[t], b3[t]];
                    for (r, &x) in av.iter().enumerate() {
                        for (s, &y) in bv.iter().enumerate() {
                            mac_narrow(&mut acc[r][s], x, y);
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    for (s, q) in acc_row.iter().enumerate() {
                        c[(i + r) * n + j + s] += self.store_narrow(q, f32_lut);
                    }
                }
                j += NR;
            }
            while j < n {
                let b_run = &b_cols[j * k..(j + 1) * k];
                c[i * n + j] += self.store_narrow(&dot_narrow(proto, a0, b_run), f32_lut);
                c[(i + 1) * n + j] += self.store_narrow(&dot_narrow(proto, a1, b_run), f32_lut);
                j += 1;
            }
            i += MR;
        }
        while i < rows {
            let a_run = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_run = &b_cols[j * k..(j + 1) * k];
                c[i * n + j] += self.store_narrow(&dot_narrow(proto, a_run, b_run), f32_lut);
            }
            i += 1;
        }
    }

    /// Wide fallback over one row block: per-output dots into the
    /// limb-array [`Quire`] (formats or reduction depths the narrow
    /// accumulator refuses). Operands still stream contiguously.
    #[allow(clippy::too_many_arguments)]
    fn block_wide(
        &self,
        f32_lut: Option<&[f32]>,
        margin: u32,
        rows: usize,
        k: usize,
        n: usize,
        a: &[Unpacked],
        b_cols: &[Unpacked],
        c: &mut [f32],
    ) {
        let mut q = Quire::with_margin(self.fmt, margin);
        for i in 0..rows {
            let a_run = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_run = &b_cols[j * k..(j + 1) * k];
                q.clear();
                for (&x, &y) in a_run.iter().zip(b_run) {
                    if x.sig == 0 || y.sig == 0 {
                        if x.scale == NAR_SCALE || y.scale == NAR_SCALE {
                            q.set_nar();
                        }
                        continue;
                    }
                    q.add_product_parts(
                        x.neg != y.neg,
                        x.scale + y.scale,
                        (x.sig as u128) * (y.sig as u128),
                    );
                }
                if posit_obs::enabled() && q.is_nar() {
                    gemm_obs().quire_nar.incr();
                }
                let code = q.to_posit(self.rounding, 0);
                c[i * n + j] += match f32_lut {
                    Some(l) => l[code as usize],
                    None => self.fmt.to_f32(code),
                };
            }
        }
    }

    /// `c += round(a[m,k] * b[k,n])` — the posit twin of [`crate::gemm::gemm`].
    ///
    /// # Panics
    ///
    /// Panics if the plane lengths disagree with the dimensions.
    pub fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &PositPlane,
        b: &PositPlane,
        c: &mut [f32],
    ) {
        assert_eq!(a.format(), self.fmt, "A plane format");
        assert_eq!(b.format(), self.fmt, "B plane format");
        assert_eq!(a.len(), m * k, "A length");
        assert_eq!(b.len(), k * n, "B length");
        assert_eq!(c.len(), m * n, "C length");
        let margin = a.quire_margin() + b.quire_margin();
        let b_cols = transpose_elems(b.elems(), k, n);
        self.gemm_panels(m, k, n, a.elems(), &b_cols, margin, c);
    }

    /// `c += round(a^T[m,k] * b[k,n])` with `a` stored `[k, m]` — the posit
    /// twin of [`crate::gemm::gemm_at_b`].
    ///
    /// # Panics
    ///
    /// Panics if the plane lengths disagree with the dimensions.
    pub fn gemm_at_b(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a_t: &PositPlane,
        b: &PositPlane,
        c: &mut [f32],
    ) {
        assert_eq!(a_t.format(), self.fmt, "A^T plane format");
        assert_eq!(b.format(), self.fmt, "B plane format");
        assert_eq!(a_t.len(), k * m, "A^T length");
        assert_eq!(b.len(), k * n, "B length");
        assert_eq!(c.len(), m * n, "C length");
        let margin = a_t.quire_margin() + b.quire_margin();
        let a_rows = transpose_elems(a_t.elems(), k, m);
        let b_cols = transpose_elems(b.elems(), k, n);
        self.gemm_panels(m, k, n, &a_rows, &b_cols, margin, c);
    }

    /// `c += round(a[m,k] * b^T[k,n])` with `b` stored `[n, k]` — the posit
    /// twin of [`crate::gemm::gemm_a_bt`]. Both operands already sit in
    /// panel layout, so this entry point packs nothing.
    ///
    /// # Panics
    ///
    /// Panics if the plane lengths disagree with the dimensions.
    pub fn gemm_a_bt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &PositPlane,
        b_t: &PositPlane,
        c: &mut [f32],
    ) {
        assert_eq!(a.format(), self.fmt, "A plane format");
        assert_eq!(b_t.format(), self.fmt, "B^T plane format");
        assert_eq!(a.len(), m * k, "A length");
        assert_eq!(b_t.len(), n * k, "B^T length");
        assert_eq!(c.len(), m * n, "C length");
        let margin = a.quire_margin() + b_t.quire_margin();
        self.gemm_panels(m, k, n, a.elems(), b_t.elems(), margin, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(fmt: PositFormat, xs: &[f32]) -> PositPlane {
        PositPlane::from_f32(fmt, xs, Rounding::NearestEven)
    }

    #[test]
    fn plane_roundtrip_and_specials() {
        let fmt = PositFormat::of(16, 1);
        let xs = [1.5f32, -0.25, 0.0, 3.0, f32::NAN];
        let p = plane(fmt, &xs);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.format(), fmt);
        let back = p.to_f32();
        assert_eq!(&back[..4], &[1.5, -0.25, 0.0, 3.0]);
        assert!(back[4].is_nan());
    }

    #[test]
    fn lut_plane_decode_matches_direct_decode() {
        // Every ≤8-bit code word must decode to the same Unpacked through
        // the LUT path (from_bits) as through decode_one, including NaR and
        // a scale shift through from_packed.
        for (n, es) in [(8u32, 0u32), (8, 1), (8, 2), (6, 0), (5, 1)] {
            let fmt = PositFormat::of(n, es);
            let codes: Vec<u64> = (0..fmt.code_count()).collect();
            let p = PositPlane::from_bits(fmt, &codes);
            for (i, &b) in codes.iter().enumerate() {
                assert_eq!(p.elems()[i], decode_one(fmt, b, 0), "({n},{es}) {b:#x}");
            }
            let mut packed = crate::storage::PackedBits::for_format(fmt, codes.len());
            for &b in &codes {
                packed.push(b);
            }
            for shift in [-5i32, 0, 7] {
                let ps = PositPlane::from_packed(fmt, &packed, shift);
                for (i, &b) in codes.iter().enumerate() {
                    assert_eq!(
                        ps.elems()[i],
                        decode_one(fmt, b, shift),
                        "({n},{es}) {b:#x} shift {shift}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_fused_dot() {
        // The kernel's 1×1 output must equal posit::quire::fused_dot on the
        // same code words — same exact accumulation, same single rounding.
        let fmt = PositFormat::of(16, 1);
        let xs = [1.5f32, -2.25, 8.0, 0.03125, -0.5];
        let ys = [2.0f32, 4.0, -0.125, 32.0, 7.0];
        let xb: Vec<u64> = xs
            .iter()
            .map(|&v| fmt.from_f32(v, Rounding::NearestEven))
            .collect();
        let yb: Vec<u64> = ys
            .iter()
            .map(|&v| fmt.from_f32(v, Rounding::NearestEven))
            .collect();
        let want = fmt.to_f32(posit::quire::fused_dot(fmt, &xb, &yb));
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let mut c = [0.0f32];
        g.gemm(1, xs.len(), 1, &plane(fmt, &xs), &plane(fmt, &ys), &mut c);
        assert_eq!(c[0], want);
    }

    #[test]
    fn transposed_kernels_agree_with_plain() {
        let fmt = PositFormat::of(16, 1);
        let (m, k, n) = (4, 5, 3);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 - 9.0) * 0.375).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 - 7.0) * 0.25).collect();
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let mut want = vec![0.0f32; m * n];
        g.gemm(m, k, n, &plane(fmt, &a), &plane(fmt, &b), &mut want);

        let mut a_t = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c = vec![0.0f32; m * n];
        g.gemm_at_b(m, k, n, &plane(fmt, &a_t), &plane(fmt, &b), &mut c);
        assert_eq!(c, want, "gemm_at_b");

        let mut b_t = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                b_t[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c = vec![0.0f32; m * n];
        g.gemm_a_bt(m, k, n, &plane(fmt, &a), &plane(fmt, &b_t), &mut c);
        assert_eq!(c, want, "gemm_a_bt");
    }

    #[test]
    fn accumulates_into_c() {
        let fmt = PositFormat::of(16, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let a = plane(fmt, &[1.0, 0.0, 0.0, 1.0]);
        let b = plane(fmt, &[2.0, 0.0, 0.0, 2.0]);
        let mut c = vec![10.0f32; 4];
        g.gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![12.0, 10.0, 10.0, 12.0]);
    }

    #[test]
    fn quire_beats_f32_accumulation_on_cancellation() {
        // Σ = big² − big² + small where f32 accumulation of posit products
        // keeps the small term but chained posit(8,1) adds would drop it; the
        // exact accumulator keeps it exactly. Checks the kernel really is
        // single-rounding.
        let fmt = PositFormat::of(8, 1);
        let big = 1024.0f32; // exactly representable in (8,1)
        let small = 0.0625f32;
        let a = [big, big, small];
        let b = [big, -big, 1.0];
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let mut c = [0.0f32];
        g.gemm(1, 3, 1, &plane(fmt, &a), &plane(fmt, &b), &mut c);
        assert_eq!(c[0], small);
    }

    #[test]
    fn nar_poisons_only_its_output_element() {
        let fmt = PositFormat::of(16, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let a = plane(fmt, &[f32::NAN, 1.0, 2.0, 3.0]); // [2, 2]
        let b = plane(fmt, &[1.0, 0.0, 0.0, 1.0]);
        let mut c = vec![0.0f32; 4];
        g.gemm(2, 2, 2, &a, &b, &mut c);
        assert!(c[0].is_nan() && c[1].is_nan(), "row with NaR");
        assert_eq!(&c[2..], &[2.0, 3.0], "clean row unaffected");
    }

    #[test]
    fn nar_poisons_inside_register_tiles() {
        // A shape wide enough to engage the MR×NR tile with a NaR landing
        // in the middle of a tile, a zero next to it, and clean columns
        // around: only the poisoned outputs may be NaN.
        let fmt = PositFormat::of(8, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let (m, k, n) = (4, 3, 9);
        let mut av = vec![0.5f32; m * k];
        av[k + 1] = f32::NAN; // row 1 poisoned
        av[2 * k] = 0.0;
        let bv = vec![0.25f32; k * n];
        let mut c = vec![0.0f32; m * n];
        g.gemm(m, k, n, &plane(fmt, &av), &plane(fmt, &bv), &mut c);
        for i in 0..m {
            for j in 0..n {
                let v = c[i * n + j];
                if i == 1 {
                    assert!(v.is_nan(), "({i},{j}) must be NaR-poisoned");
                } else {
                    assert!(!v.is_nan(), "({i},{j}) must stay clean");
                }
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        let fmt = PositFormat::of(8, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let empty = plane(fmt, &[]);
        let mut c: Vec<f32> = vec![];
        g.gemm(0, 3, 4, &empty, &plane(fmt, &[0.0; 12]), &mut c);
        g.gemm_at_b(0, 3, 4, &empty, &plane(fmt, &[0.0; 12]), &mut c);
        g.gemm_a_bt(0, 3, 4, &empty, &plane(fmt, &[0.0; 12]), &mut c);
        assert!(c.is_empty());

        // k = 0: empty dot rounds to posit zero; C keeps its base.
        let mut c = vec![5.0f32; 6];
        g.gemm(2, 0, 3, &empty, &empty, &mut c);
        g.gemm_at_b(2, 0, 3, &empty, &empty, &mut c);
        g.gemm_a_bt(2, 0, 3, &empty, &empty, &mut c);
        assert_eq!(c, vec![5.0; 6]);

        // n = 1 column output.
        let a = plane(fmt, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = plane(fmt, &[1.0, -1.0, 2.0]);
        let mut c = vec![0.0f32; 2];
        g.gemm(2, 3, 1, &a, &b, &mut c);
        assert_eq!(c, vec![5.0, 11.0]);
    }

    #[test]
    fn wide_and_narrow_paths_agree_at_every_tile_edge() {
        // Sweep shapes across the MR/NR remainder space so main tiles, row
        // tails and column tails all execute, on a format with a LUT (8,1)
        // and one without (16,1); the forced-wide kernel is the reference.
        for (fmt, scale) in [
            (PositFormat::of(8, 1), 0.25f32),
            (PositFormat::of(16, 1), 0.125f32),
        ] {
            let fast = PositGemm::new(fmt, Rounding::NearestEven);
            let wide = fast.wide_accumulator(true);
            for (m, k, n) in [
                (1, 1, 1),
                (2, 3, 4),
                (3, 5, 5),
                (5, 7, 9),
                (4, 2, 8),
                (7, 4, 11),
            ] {
                let av: Vec<f32> = (0..m * k)
                    .map(|i| ((i * 13 % 17) as f32 - 8.0) * scale)
                    .collect();
                let bv: Vec<f32> = (0..k * n)
                    .map(|i| ((i * 11 % 19) as f32 - 9.0) * scale)
                    .collect();
                let (pa, pb) = (plane(fmt, &av), plane(fmt, &bv));
                assert!(fast.uses_narrow_path(0, k), "{fmt} k={k}");
                assert!(!wide.uses_narrow_path(0, k));
                let mut c_fast = vec![0.0f32; m * n];
                let mut c_wide = vec![0.0f32; m * n];
                fast.gemm(m, k, n, &pa, &pb, &mut c_fast);
                wide.gemm(m, k, n, &pa, &pb, &mut c_wide);
                assert_eq!(c_fast, c_wide, "{fmt} ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn deep_reductions_fall_back_to_the_wide_quire() {
        // (16,1) has 13 guard bits: K beyond 8192 must refuse the narrow
        // path automatically and still agree with the forced-wide kernel.
        let fmt = PositFormat::of(16, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let k = 8200;
        assert!(!g.uses_narrow_path(0, k), "K guard must refuse");
        assert!(g.uses_narrow_path(0, 8192), "K at the guard limit is fine");
        let av: Vec<f32> = (0..k)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let bv: Vec<f32> = (0..k).map(|i| ((i % 5) as f32) * 0.25).collect();
        let mut c_auto = vec![0.0f32; 1];
        let mut c_wide = vec![0.0f32; 1];
        g.gemm(1, k, 1, &plane(fmt, &av), &plane(fmt, &bv), &mut c_auto);
        g.wide_accumulator(true)
            .gemm(1, k, 1, &plane(fmt, &av), &plane(fmt, &bv), &mut c_wide);
        assert_eq!(c_auto, c_wide);
    }

    #[test]
    fn parallel_split_is_deterministic() {
        let fmt = PositFormat::of(8, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let (m, k, n) = (64, 32, 16);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.125)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 % 19) as f32 - 9.0) * 0.25)
            .collect();
        let (pa, pb) = (plane(fmt, &a), plane(fmt, &b));
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        g.gemm(m, k, n, &pa, &pb, &mut c1);
        g.gemm(m, k, n, &pa, &pb, &mut c2);
        assert_eq!(c1, c2);
        // And the pooled split must equal a fully serial run.
        let mut c3 = vec![0.0f32; m * n];
        crate::workers::serial_scope(|| g.gemm(m, k, n, &pa, &pb, &mut c3));
        assert_eq!(c1, c3, "pool vs serial");
    }
}
