//! Posit-domain GEMM: decode-once operand planes with exact quire
//! accumulation.
//!
//! The paper's claim is that low-precision posit training holds up when dot
//! products accumulate *exactly* (the EMAC of Deep Positron): every product
//! `P(a)·P(b)` lands in a wide fixed-point quire and the sum is rounded to a
//! posit only once, on store. The naive way to get there is to call
//! [`posit::Quire::add_product`] per multiply-accumulate, which decodes both
//! code words every time — `O(M·N·K)` decodes. The kernels here instead
//! unpack each operand element once into an `(sign, scale, fraction)`
//! [`PositPlane`] and feed raw significand products to the quire via
//! [`posit::Quire::add_product_parts`] — `O(M·K + K·N)` decodes, zero per-MAC
//! decode work.
//!
//! The kernel family mirrors the f32 entry points in [`crate::gemm`]
//! (`gemm`, `gemm_at_b`, `gemm_a_bt`) with identical shape conventions and
//! the same scoped-thread row partitioner, so the `nn` layers can swap
//! backends without reshaping anything.

use crate::gemm::par_rows;
use posit::{PositFormat, PositValue, Quire, Rounding};

/// Sentinel scale marking a NaR element in a plane (no finite posit scale
/// gets anywhere near `i32::MIN`).
const NAR_SCALE: i32 = i32::MIN;

/// One decoded posit operand: `value = ±2^(scale-63) * sig` with the
/// implicit leading one at bit 63 of `sig`.
///
/// Zero is `sig == 0`; NaR is `sig == 0` with `scale == i32::MIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unpacked {
    /// 64-bit significand (bit 63 set for finite non-zero values).
    pub sig: u64,
    /// Effective binary exponent, or the NaR sentinel.
    pub scale: i32,
    /// True for negative values.
    pub neg: bool,
}

const ZERO_ELEM: Unpacked = Unpacked {
    sig: 0,
    scale: 0,
    neg: false,
};

/// A matrix tile decoded once into unpacked posit elements.
///
/// Built from f32 data (quantize + decode) or from raw code words (decode
/// only); consumed by the [`PositGemm`] kernels, which never decode again.
#[derive(Debug, Clone)]
pub struct PositPlane {
    fmt: PositFormat,
    /// Eq. 2 scale exponent folded into the element scales (widens the
    /// quire the kernels allocate; 0 for unshifted planes).
    scale_exp: i32,
    elems: Vec<Unpacked>,
}

impl PositPlane {
    fn decode_one(fmt: PositFormat, b: u64, scale_exp: i32) -> Unpacked {
        match fmt.decode(b) {
            PositValue::Zero => ZERO_ELEM,
            PositValue::NaR => Unpacked {
                sig: 0,
                scale: NAR_SCALE,
                neg: false,
            },
            PositValue::Finite(d) => Unpacked {
                sig: d.significand(),
                scale: d.scale + scale_exp,
                neg: d.sign.is_negative(),
            },
        }
    }

    /// Decode a slice of code words (low `n` bits of each `u64`).
    pub fn from_bits(fmt: PositFormat, bits: &[u64]) -> PositPlane {
        let elems = bits.iter().map(|&b| Self::decode_one(fmt, b, 0)).collect();
        PositPlane {
            fmt,
            scale_exp: 0,
            elems,
        }
    }

    /// Decode a packed storage plane, folding its Eq. 2 scale exponent into
    /// the element scales — the decode-once entry point for posit-resident
    /// tensors: `value = P(x/Sf)·Sf` arrives in the kernel *exactly*, with
    /// no f32 staging buffer and no re-rounding onto the unshifted grid.
    pub fn from_packed(
        fmt: PositFormat,
        bits: &crate::storage::PackedBits,
        scale_exp: i32,
    ) -> PositPlane {
        let elems = bits
            .iter()
            .map(|b| Self::decode_one(fmt, b, scale_exp))
            .collect();
        PositPlane {
            fmt,
            scale_exp,
            elems,
        }
    }

    /// Quantize f32 data to the format under `rounding`, then decode once.
    ///
    /// This is the `P(·)` edge of the paper's Fig. 3 fused with the operand
    /// unpack: the plane holds exactly the values a quantize→store→reload
    /// round trip would produce, without materializing the f32 copy.
    pub fn from_f32(fmt: PositFormat, xs: &[f32], rounding: Rounding) -> PositPlane {
        let bits: Vec<u64> = xs.iter().map(|&x| fmt.from_f32(x, rounding)).collect();
        PositPlane::from_bits(fmt, &bits)
    }

    /// The format the plane was decoded from.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// The Eq. 2 scale exponent folded into the element scales.
    pub fn scale_exp(&self) -> i32 {
        self.scale_exp
    }

    /// Extra quire headroom (bits) this plane's scale shift requires.
    fn quire_margin(&self) -> u32 {
        self.scale_exp.unsigned_abs()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True iff the plane holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The unpacked elements (row-major, caller-defined shape).
    pub fn elems(&self) -> &[Unpacked] {
        &self.elems
    }

    /// Render back to f32 (each element is an exactly representable posit).
    pub fn to_f32(&self) -> Vec<f32> {
        self.elems
            .iter()
            .map(|e| {
                if e.sig == 0 {
                    if e.scale == NAR_SCALE {
                        f32::NAN
                    } else {
                        0.0
                    }
                } else {
                    let m = e.sig as f64 * (e.scale as f64 - 63.0).exp2();
                    if e.neg {
                        -m as f32
                    } else {
                        m as f32
                    }
                }
            })
            .collect()
    }
}

/// A strided view over plane elements: `elems[start + t*step]` for `t < k`.
#[derive(Clone, Copy)]
struct Run<'a> {
    elems: &'a [Unpacked],
    start: usize,
    step: usize,
}

/// The posit GEMM kernel family: exact quire accumulation over
/// [`PositPlane`] operands, one rounding per output element.
///
/// `C += round(Σ_k a·b)`: like the f32 kernels, outputs accumulate into `C`
/// so the backward passes can sum gradient contributions across calls; the
/// posit-domain rounding happens once per GEMM, on store.
#[derive(Debug, Clone, Copy)]
pub struct PositGemm {
    fmt: PositFormat,
    rounding: Rounding,
}

impl PositGemm {
    /// A kernel for `fmt`, rounding once per output element with `rounding`.
    ///
    /// [`Rounding::Stochastic`] needs a per-element random word the kernel
    /// does not carry; it degrades to round-to-nearest-even.
    pub fn new(fmt: PositFormat, rounding: Rounding) -> PositGemm {
        let rounding = if rounding == Rounding::Stochastic {
            Rounding::NearestEven
        } else {
            rounding
        };
        PositGemm { fmt, rounding }
    }

    /// The kernel's format.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// Unpack f32 data into an operand plane for this kernel's format.
    pub fn encode_plane(&self, xs: &[f32]) -> PositPlane {
        PositPlane::from_f32(self.fmt, xs, self.rounding)
    }

    /// Exact dot product of two strided element runs of length `k`,
    /// rounded once.
    fn dot(&self, q: &mut Quire, k: usize, a: Run<'_>, b: Run<'_>) -> f32 {
        q.clear();
        for t in 0..k {
            let ua = a.elems[a.start + t * a.step];
            let ub = b.elems[b.start + t * b.step];
            if ua.sig == 0 || ub.sig == 0 {
                if ua.scale == NAR_SCALE || ub.scale == NAR_SCALE {
                    q.set_nar();
                }
                continue;
            }
            q.add_product_parts(
                ua.neg != ub.neg,
                ua.scale + ub.scale,
                (ua.sig as u128) * (ub.sig as u128),
            );
        }
        self.fmt.to_f32(q.to_posit(self.rounding, 0))
    }

    /// `c += round(a[m,k] * b[k,n])` — the posit twin of [`crate::gemm::gemm`].
    ///
    /// # Panics
    ///
    /// Panics if the plane lengths disagree with the dimensions.
    pub fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &PositPlane,
        b: &PositPlane,
        c: &mut [f32],
    ) {
        assert_eq!(a.format(), self.fmt, "A plane format");
        assert_eq!(b.format(), self.fmt, "B plane format");
        assert_eq!(a.len(), m * k, "A length");
        assert_eq!(b.len(), k * n, "B length");
        assert_eq!(c.len(), m * n, "C length");
        let kernel = *self;
        let margin = a.quire_margin() + b.quire_margin();
        par_rows(m, n, m * k * n, c, |row0, c_chunk| {
            let rows = c_chunk.len().checked_div(n).unwrap_or(0);
            let mut q = Quire::with_margin(kernel.fmt, margin);
            for i in 0..rows {
                let a_row = Run {
                    elems: a.elems(),
                    start: (row0 + i) * k,
                    step: 1,
                };
                for j in 0..n {
                    let b_col = Run {
                        elems: b.elems(),
                        start: j,
                        step: n,
                    };
                    c_chunk[i * n + j] += kernel.dot(&mut q, k, a_row, b_col);
                }
            }
        });
    }

    /// `c += round(a^T[m,k] * b[k,n])` with `a` stored `[k, m]` — the posit
    /// twin of [`crate::gemm::gemm_at_b`].
    ///
    /// # Panics
    ///
    /// Panics if the plane lengths disagree with the dimensions.
    pub fn gemm_at_b(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a_t: &PositPlane,
        b: &PositPlane,
        c: &mut [f32],
    ) {
        assert_eq!(a_t.format(), self.fmt, "A^T plane format");
        assert_eq!(b.format(), self.fmt, "B plane format");
        assert_eq!(a_t.len(), k * m, "A^T length");
        assert_eq!(b.len(), k * n, "B length");
        assert_eq!(c.len(), m * n, "C length");
        let kernel = *self;
        let margin = a_t.quire_margin() + b.quire_margin();
        par_rows(m, n, m * k * n, c, |row0, c_chunk| {
            let rows = c_chunk.len().checked_div(n).unwrap_or(0);
            let mut q = Quire::with_margin(kernel.fmt, margin);
            for i in 0..rows {
                let a_col = Run {
                    elems: a_t.elems(),
                    start: row0 + i,
                    step: m,
                };
                for j in 0..n {
                    let b_col = Run {
                        elems: b.elems(),
                        start: j,
                        step: n,
                    };
                    c_chunk[i * n + j] += kernel.dot(&mut q, k, a_col, b_col);
                }
            }
        });
    }

    /// `c += round(a[m,k] * b^T[k,n])` with `b` stored `[n, k]` — the posit
    /// twin of [`crate::gemm::gemm_a_bt`].
    ///
    /// # Panics
    ///
    /// Panics if the plane lengths disagree with the dimensions.
    pub fn gemm_a_bt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &PositPlane,
        b_t: &PositPlane,
        c: &mut [f32],
    ) {
        assert_eq!(a.format(), self.fmt, "A plane format");
        assert_eq!(b_t.format(), self.fmt, "B^T plane format");
        assert_eq!(a.len(), m * k, "A length");
        assert_eq!(b_t.len(), n * k, "B^T length");
        assert_eq!(c.len(), m * n, "C length");
        let kernel = *self;
        let margin = a.quire_margin() + b_t.quire_margin();
        par_rows(m, n, m * k * n, c, |row0, c_chunk| {
            let rows = c_chunk.len().checked_div(n).unwrap_or(0);
            let mut q = Quire::with_margin(kernel.fmt, margin);
            for i in 0..rows {
                let a_row = Run {
                    elems: a.elems(),
                    start: (row0 + i) * k,
                    step: 1,
                };
                for j in 0..n {
                    let b_row = Run {
                        elems: b_t.elems(),
                        start: j * k,
                        step: 1,
                    };
                    c_chunk[i * n + j] += kernel.dot(&mut q, k, a_row, b_row);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(fmt: PositFormat, xs: &[f32]) -> PositPlane {
        PositPlane::from_f32(fmt, xs, Rounding::NearestEven)
    }

    #[test]
    fn plane_roundtrip_and_specials() {
        let fmt = PositFormat::of(16, 1);
        let xs = [1.5f32, -0.25, 0.0, 3.0, f32::NAN];
        let p = plane(fmt, &xs);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.format(), fmt);
        let back = p.to_f32();
        assert_eq!(&back[..4], &[1.5, -0.25, 0.0, 3.0]);
        assert!(back[4].is_nan());
    }

    #[test]
    fn matches_fused_dot() {
        // The kernel's 1×1 output must equal posit::quire::fused_dot on the
        // same code words — same quire, same single rounding.
        let fmt = PositFormat::of(16, 1);
        let xs = [1.5f32, -2.25, 8.0, 0.03125, -0.5];
        let ys = [2.0f32, 4.0, -0.125, 32.0, 7.0];
        let xb: Vec<u64> = xs
            .iter()
            .map(|&v| fmt.from_f32(v, Rounding::NearestEven))
            .collect();
        let yb: Vec<u64> = ys
            .iter()
            .map(|&v| fmt.from_f32(v, Rounding::NearestEven))
            .collect();
        let want = fmt.to_f32(posit::quire::fused_dot(fmt, &xb, &yb));
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let mut c = [0.0f32];
        g.gemm(1, xs.len(), 1, &plane(fmt, &xs), &plane(fmt, &ys), &mut c);
        assert_eq!(c[0], want);
    }

    #[test]
    fn transposed_kernels_agree_with_plain() {
        let fmt = PositFormat::of(16, 1);
        let (m, k, n) = (4, 5, 3);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 - 9.0) * 0.375).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 - 7.0) * 0.25).collect();
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let mut want = vec![0.0f32; m * n];
        g.gemm(m, k, n, &plane(fmt, &a), &plane(fmt, &b), &mut want);

        let mut a_t = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c = vec![0.0f32; m * n];
        g.gemm_at_b(m, k, n, &plane(fmt, &a_t), &plane(fmt, &b), &mut c);
        assert_eq!(c, want, "gemm_at_b");

        let mut b_t = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                b_t[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c = vec![0.0f32; m * n];
        g.gemm_a_bt(m, k, n, &plane(fmt, &a), &plane(fmt, &b_t), &mut c);
        assert_eq!(c, want, "gemm_a_bt");
    }

    #[test]
    fn accumulates_into_c() {
        let fmt = PositFormat::of(16, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let a = plane(fmt, &[1.0, 0.0, 0.0, 1.0]);
        let b = plane(fmt, &[2.0, 0.0, 0.0, 2.0]);
        let mut c = vec![10.0f32; 4];
        g.gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![12.0, 10.0, 10.0, 12.0]);
    }

    #[test]
    fn quire_beats_f32_accumulation_on_cancellation() {
        // Σ = big² − big² + small where f32 accumulation of posit products
        // keeps the small term but chained posit(8,1) adds would drop it; the
        // quire keeps it exactly. Checks the kernel really is single-rounding.
        let fmt = PositFormat::of(8, 1);
        let big = 1024.0f32; // exactly representable in (8,1)
        let small = 0.0625f32;
        let a = [big, big, small];
        let b = [big, -big, 1.0];
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let mut c = [0.0f32];
        g.gemm(1, 3, 1, &plane(fmt, &a), &plane(fmt, &b), &mut c);
        assert_eq!(c[0], small);
    }

    #[test]
    fn nar_poisons_only_its_output_element() {
        let fmt = PositFormat::of(16, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let a = plane(fmt, &[f32::NAN, 1.0, 2.0, 3.0]); // [2, 2]
        let b = plane(fmt, &[1.0, 0.0, 0.0, 1.0]);
        let mut c = vec![0.0f32; 4];
        g.gemm(2, 2, 2, &a, &b, &mut c);
        assert!(c[0].is_nan() && c[1].is_nan(), "row with NaR");
        assert_eq!(&c[2..], &[2.0, 3.0], "clean row unaffected");
    }

    #[test]
    fn degenerate_shapes() {
        let fmt = PositFormat::of(8, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let empty = plane(fmt, &[]);
        let mut c: Vec<f32> = vec![];
        g.gemm(0, 3, 4, &empty, &plane(fmt, &[0.0; 12]), &mut c);
        g.gemm_at_b(0, 3, 4, &empty, &plane(fmt, &[0.0; 12]), &mut c);
        g.gemm_a_bt(0, 3, 4, &empty, &plane(fmt, &[0.0; 12]), &mut c);
        assert!(c.is_empty());

        // k = 0: empty dot rounds to posit zero; C keeps its base.
        let mut c = vec![5.0f32; 6];
        g.gemm(2, 0, 3, &empty, &empty, &mut c);
        g.gemm_at_b(2, 0, 3, &empty, &empty, &mut c);
        g.gemm_a_bt(2, 0, 3, &empty, &empty, &mut c);
        assert_eq!(c, vec![5.0; 6]);

        // n = 1 column output.
        let a = plane(fmt, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = plane(fmt, &[1.0, -1.0, 2.0]);
        let mut c = vec![0.0f32; 2];
        g.gemm(2, 3, 1, &a, &b, &mut c);
        assert_eq!(c, vec![5.0, 11.0]);
    }

    #[test]
    fn parallel_split_is_deterministic() {
        let fmt = PositFormat::of(8, 1);
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let (m, k, n) = (64, 32, 16);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.125)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 % 19) as f32 - 9.0) * 0.25)
            .collect();
        let (pa, pb) = (plane(fmt, &a), plane(fmt, &b));
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        g.gemm(m, k, n, &pa, &pb, &mut c1);
        g.gemm(m, k, n, &pa, &pb, &mut c2);
        assert_eq!(c1, c2);
    }
}
