//! Minimal f32 tensor substrate for the posit-dnn reproduction.
//!
//! The paper simulates posit training on FP32 GPUs; this crate is the FP32
//! compute substrate: a contiguous row-major [`Tensor`], a blocked,
//! thread-parallel [`gemm`], im2col convolution ([`conv`]), pooling
//! ([`pool`]) and the seeded RNG helpers ([`rng`]) everything else builds
//! on. Determinism: every parallel split is static, every reduction order
//! fixed, every random stream explicitly seeded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod gemm;
pub mod pool;
pub mod rng;
mod tensor;

pub use tensor::Tensor;
