//! Minimal tensor substrate for the posit-dnn reproduction.
//!
//! The paper simulates posit training on FP32 GPUs; this crate provides the
//! compute substrate: a contiguous row-major [`Tensor`] with dual-domain
//! [`storage`] (dense f32 or packed posit code words), a blocked,
//! thread-parallel f32 [`gemm`], a posit-domain GEMM family with exact
//! quire accumulation ([`posit_gemm`]) that consumes packed planes
//! directly, the [`Backend`] switch dispatching between them over
//! dual-domain [`Operand`]s, im2col convolution ([`conv`]), pooling
//! ([`pool`]) and the seeded RNG helpers ([`rng`]) everything else builds
//! on. Determinism: every parallel split is static, every reduction order
//! fixed, every random stream explicitly seeded.

// `deny` rather than `forbid`: the persistent worker pool in [`workers`]
// needs one narrowly-scoped lifetime erasure (the standard scoped-pool
// technique) behind a module-level allow; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod conv;
pub mod gemm;
pub mod grad_accum;
pub mod pool;
pub mod posit_gemm;
pub mod rng;
pub mod storage;
mod tensor;
pub mod workers;

pub use backend::{Backend, Operand, OperandCache, PreparedOperand};
pub use gemm::par_map_indexed;
pub use grad_accum::GradQuireBuf;
pub use posit_gemm::{KStripMode, PositGemm, PositPlane};
pub use storage::{PackedBits, Storage, StorageDomain, StorageError};
pub use tensor::Tensor;
pub use workers::serial_scope;
