//! The compute-backend switch: one dispatch point for every GEMM-shaped
//! operation in the workspace.
//!
//! Three backends implement the same `C += A·B` contracts as
//! [`crate::gemm`]:
//!
//! * [`Backend::F32`] — the plain blocked f32 kernels (the substrate the
//!   paper's GPU simulation runs on);
//! * [`Backend::PositEmulated`] — the quantize→f32-GEMM→requantize sandwich:
//!   operands are rounded to the posit grid element-by-element, the multiply
//!   accumulates in f32, and the result is rounded again. This is what
//!   per-element `P(·)` insertion around an f32 kernel computes, with its
//!   double rounding;
//! * [`Backend::PositQuire`] — the decode-once [`crate::posit_gemm`] kernels:
//!   operands are unpacked once, every product accumulates exactly in a
//!   quire, and each output element is rounded exactly once.
//!
//! The `nn` layers carry a `Backend` per direction (forward / backward), so
//! the trainer can A/B the three paths without touching layer code.

use crate::gemm;
use crate::posit_gemm::{PositGemm, PositPlane};
use posit::{PositFormat, Rounding};

/// Which kernel family executes a GEMM, and in which number system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Plain f32 kernels (default).
    #[default]
    F32,
    /// Posit-emulated: per-element quantization around the f32 kernel.
    PositEmulated {
        /// Operand/result format.
        fmt: PositFormat,
        /// Rounding mode for every quantization point.
        rounding: Rounding,
    },
    /// Posit-native: decode-once planes with exact quire accumulation.
    PositQuire {
        /// Operand/result format.
        fmt: PositFormat,
        /// Rounding mode for the single rounding on store.
        rounding: Rounding,
    },
}

impl Backend {
    /// Short stable name (`f32` | `posit-emulated` | `posit-quire`), e.g.
    /// for bench labels and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::F32 => "f32",
            Backend::PositEmulated { .. } => "posit-emulated",
            Backend::PositQuire { .. } => "posit-quire",
        }
    }

    /// The rounding mode the kernels actually apply: stochastic degrades to
    /// nearest-even (the kernels carry no per-element random stream).
    pub(crate) fn op_rounding(rounding: Rounding) -> Rounding {
        if rounding == Rounding::Stochastic {
            Rounding::NearestEven
        } else {
            rounding
        }
    }

    /// Quantize a slice to the posit grid (the sandwich's operand rounding).
    pub(crate) fn sandwich_quantize(fmt: &PositFormat, rounding: Rounding, xs: &[f32]) -> Vec<f32> {
        xs.iter()
            .map(|&x| fmt.to_f32(fmt.from_f32(x, rounding)))
            .collect()
    }

    /// Prepare a left operand once for repeated GEMMs under this backend —
    /// the decode-once contract extended across calls (e.g. a conv batch
    /// loop where the weight tile is the `A` operand of every sample's
    /// GEMM). For [`Backend::F32`] this is a free borrow; for the posit
    /// backends it pays the quantize/decode exactly once.
    pub fn prepare<'a>(&self, xs: &'a [f32]) -> PreparedOperand<'a> {
        let inner = match self {
            Backend::F32 => Prepared::F32(xs),
            Backend::PositEmulated { fmt, rounding } => {
                let rounding = Self::op_rounding(*rounding);
                Prepared::Emulated {
                    fmt: *fmt,
                    rounding,
                    q: Self::sandwich_quantize(fmt, rounding, xs),
                }
            }
            Backend::PositQuire { fmt, rounding } => {
                let kernel = PositGemm::new(*fmt, *rounding);
                let plane = kernel.encode_plane(xs);
                Prepared::Quire { kernel, plane }
            }
        };
        PreparedOperand { inner }
    }

    /// `c += a[m,k] * b[k,n]` under this backend.
    pub fn gemm(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        self.prepare(a).gemm(m, k, n, b, c);
    }

    /// `c += a^T[m,k] * b[k,n]` (`a` stored `[k, m]`) under this backend.
    pub fn gemm_at_b(&self, m: usize, k: usize, n: usize, a_t: &[f32], b: &[f32], c: &mut [f32]) {
        self.prepare(a_t).gemm_at_b(m, k, n, b, c);
    }

    /// `c += a[m,k] * b^T[k,n]` (`b` stored `[n, k]`) under this backend.
    pub fn gemm_a_bt(&self, m: usize, k: usize, n: usize, a: &[f32], b_t: &[f32], c: &mut [f32]) {
        self.prepare(a).gemm_a_bt(m, k, n, b_t, c);
    }
}

/// A GEMM left operand prepared once under a [`Backend`] (see
/// [`Backend::prepare`]); the right operand is prepared per call.
pub struct PreparedOperand<'a> {
    inner: Prepared<'a>,
}

enum Prepared<'a> {
    F32(&'a [f32]),
    Emulated {
        fmt: PositFormat,
        rounding: Rounding,
        q: Vec<f32>,
    },
    Quire {
        kernel: PositGemm,
        plane: PositPlane,
    },
}

impl PreparedOperand<'_> {
    /// The emulated sandwich tail: requantize the f32 scratch result and
    /// accumulate it into `c`.
    fn emulated_store(fmt: &PositFormat, rounding: Rounding, tmp: &[f32], c: &mut [f32]) {
        for (ci, &t) in c.iter_mut().zip(tmp) {
            *ci += fmt.to_f32(fmt.from_f32(t, rounding));
        }
    }

    /// `c += self[m,k] * b[k,n]` (`self` is the prepared `A`).
    pub fn gemm(&self, m: usize, k: usize, n: usize, b: &[f32], c: &mut [f32]) {
        match &self.inner {
            Prepared::F32(a) => gemm::gemm(m, k, n, a, b, c),
            Prepared::Emulated { fmt, rounding, q } => {
                let qb = Backend::sandwich_quantize(fmt, *rounding, b);
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm(m, k, n, q, &qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            Prepared::Quire { kernel, plane } => {
                let pb = kernel.encode_plane(b);
                kernel.gemm(m, k, n, plane, &pb, c);
            }
        }
    }

    /// `c += self^T[m,k] * b[k,n]` (`self` is the prepared `A^T`, stored
    /// `[k, m]`).
    pub fn gemm_at_b(&self, m: usize, k: usize, n: usize, b: &[f32], c: &mut [f32]) {
        match &self.inner {
            Prepared::F32(a_t) => gemm::gemm_at_b(m, k, n, a_t, b, c),
            Prepared::Emulated { fmt, rounding, q } => {
                let qb = Backend::sandwich_quantize(fmt, *rounding, b);
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm_at_b(m, k, n, q, &qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            Prepared::Quire { kernel, plane } => {
                let pb = kernel.encode_plane(b);
                kernel.gemm_at_b(m, k, n, plane, &pb, c);
            }
        }
    }

    /// `c += self[m,k] * b^T[k,n]` (`self` is the prepared `A`; `b` stored
    /// `[n, k]`).
    pub fn gemm_a_bt(&self, m: usize, k: usize, n: usize, b_t: &[f32], c: &mut [f32]) {
        match &self.inner {
            Prepared::F32(a) => gemm::gemm_a_bt(m, k, n, a, b_t, c),
            Prepared::Emulated { fmt, rounding, q } => {
                let qb = Backend::sandwich_quantize(fmt, *rounding, b_t);
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm_a_bt(m, k, n, q, &qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            Prepared::Quire { kernel, plane } => {
                let pb = kernel.encode_plane(b_t);
                kernel.gemm_a_bt(m, k, n, plane, &pb, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FMT: PositFormat = PositFormat::of(16, 1);

    fn backends() -> [Backend; 3] {
        [
            Backend::F32,
            Backend::PositEmulated {
                fmt: FMT,
                rounding: Rounding::NearestEven,
            },
            Backend::PositQuire {
                fmt: FMT,
                rounding: Rounding::NearestEven,
            },
        ]
    }

    #[test]
    fn names() {
        let [f, e, q] = backends();
        assert_eq!(f.name(), "f32");
        assert_eq!(e.name(), "posit-emulated");
        assert_eq!(q.name(), "posit-quire");
        assert_eq!(Backend::default(), Backend::F32);
    }

    #[test]
    fn backends_agree_on_exact_inputs() {
        // Small powers of two: every intermediate is exact in (16,1) and in
        // f32, so all three backends must produce identical results.
        let a = [1.0f32, 2.0, -0.5, 4.0, 0.25, -8.0]; // [2, 3]
        let b = [2.0f32, 0.5, -1.0, 4.0, 0.125, -2.0]; // [3, 2]
        let mut want = vec![0.0f32; 4];
        gemm::gemm(2, 3, 2, &a, &b, &mut want);
        for bk in backends() {
            let mut c = vec![0.0f32; 4];
            bk.gemm(2, 3, 2, &a, &b, &mut c);
            assert_eq!(c, want, "{}", bk.name());
        }
    }

    #[test]
    fn transposed_dispatch_matches_plain() {
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2, 3]
        let a_t = [1.0f32, 4.0, 2.0, 5.0, 3.0, 6.0]; // [3, 2]
        let b = [1.0f32, -2.0, 0.5, 1.0, -1.0, 2.0]; // [3, 2]
        let b_t = [1.0f32, 0.5, -1.0, -2.0, 1.0, 2.0]; // [2, 3]
        for bk in backends() {
            let mut plain = vec![0.0f32; 4];
            bk.gemm(2, 3, 2, &a, &b, &mut plain);
            let mut c = vec![0.0f32; 4];
            bk.gemm_at_b(2, 3, 2, &a_t, &b, &mut c);
            assert_eq!(c, plain, "gemm_at_b {}", bk.name());
            let mut c = vec![0.0f32; 4];
            bk.gemm_a_bt(2, 3, 2, &a, &b_t, &mut c);
            assert_eq!(c, plain, "gemm_a_bt {}", bk.name());
        }
    }

    #[test]
    fn posit_backends_accumulate_into_c() {
        for bk in backends() {
            let mut c = vec![100.0f32; 1];
            bk.gemm(1, 1, 1, &[2.0], &[3.0], &mut c);
            assert_eq!(c, vec![106.0], "{}", bk.name());
        }
    }

    #[test]
    fn stochastic_rounding_degrades_instead_of_panicking() {
        // The A4 ablation configures Rounding::Stochastic; the kernels
        // carry no per-element random stream, so every backend must degrade
        // to nearest-even rather than hit from_f64's stochastic assert.
        let a = [1.0f32, 2.0, -0.5, 4.0, 0.25, -8.0];
        let b = [2.0f32, 0.5, -1.0, 4.0, 0.125, -2.0];
        for bk in [
            Backend::PositEmulated {
                fmt: FMT,
                rounding: Rounding::Stochastic,
            },
            Backend::PositQuire {
                fmt: FMT,
                rounding: Rounding::Stochastic,
            },
        ] {
            let mut want = vec![0.0f32; 4];
            bk.gemm(2, 3, 2, &a, &b, &mut want);
            let mut c = vec![0.0f32; 4];
            bk.gemm_at_b(2, 3, 2, &[1.0, 4.0, 2.0, 0.25, -0.5, -8.0], &b, &mut c);
            let mut c = vec![0.0f32; 4];
            bk.gemm_a_bt(2, 3, 2, &a, &[2.0, -1.0, 0.125, 0.5, 4.0, -2.0], &mut c);
        }
    }

    #[test]
    fn quire_avoids_the_double_rounding_of_the_sandwich() {
        // Exact dot: 1 + 2^-13 + 2^-40. In (16,1) the codes around it are
        // 1.0 (even LSB) and 1 + 2^-12, with midpoint 1 + 2^-13. The f32
        // accumulator of the sandwich drops the 2^-40 term (41 significant
        // bits needed), lands exactly on the midpoint and ties to the even
        // code 1.0; the quire keeps the term, sits above the midpoint and
        // must round up. Every operand is exactly representable in (16,1),
        // so the difference is purely the accumulator.
        let fmt = PositFormat::of(16, 1);
        let emu = Backend::PositEmulated {
            fmt,
            rounding: Rounding::NearestEven,
        };
        let qui = Backend::PositQuire {
            fmt,
            rounding: Rounding::NearestEven,
        };
        let a = [1.0f32, (-13f32).exp2(), (-20f32).exp2()];
        let b = [1.0f32, 1.0, (-20f32).exp2()];
        let mut ce = vec![0.0f32; 1];
        emu.gemm(1, 3, 1, &a, &b, &mut ce);
        let mut cq = vec![0.0f32; 1];
        qui.gemm(1, 3, 1, &a, &b, &mut cq);
        assert_eq!(ce[0], 1.0, "sandwich ties to even after dropping 2^-40");
        let up = 1.0 + (-12f32).exp2();
        assert_eq!(cq[0], up, "quire keeps 2^-40 and rounds up");
        // And the quire result must be on the (16,1) grid exactly.
        let back = fmt.to_f32(fmt.from_f32(cq[0], Rounding::NearestEven));
        assert_eq!(back, cq[0]);
    }
}
