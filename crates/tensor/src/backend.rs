//! The compute-backend switch: one dispatch point for every GEMM-shaped
//! operation in the workspace.
//!
//! Three backends implement the same `C += A·B` contracts as
//! [`crate::gemm`]:
//!
//! * [`Backend::F32`] — the plain blocked f32 kernels (the substrate the
//!   paper's GPU simulation runs on);
//! * [`Backend::PositEmulated`] — the quantize→f32-GEMM→requantize sandwich:
//!   operands are rounded to the posit grid element-by-element, the multiply
//!   accumulates in f32, and the result is rounded again. This is what
//!   per-element `P(·)` insertion around an f32 kernel computes, with its
//!   double rounding;
//! * [`Backend::PositQuire`] — the decode-once [`crate::posit_gemm`] kernels:
//!   operands are unpacked once, every product accumulates exactly in a
//!   quire, and each output element is rounded exactly once.
//!
//! Operands arrive as [`Operand`]s, which carry either storage domain of
//! [`Tensor`]: a borrowed f32 slice, or a packed posit plane. A packed
//! operand whose format matches a [`Backend::PositQuire`] kernel is decoded
//! straight from its code words — no f32 staging buffer, no re-rounding,
//! and the Eq. 2 scale exponent it was encoded under is folded into the
//! decoded scales exactly. Every other combination decodes to f32 first
//! (the explicit round trip the packed path exists to avoid).
//!
//! The `nn` layers carry a `Backend` per direction (forward / backward), so
//! the trainer can A/B the three paths without touching layer code.

use crate::gemm;
use crate::posit_gemm::{PositGemm, PositPlane};
use crate::storage::{PackedBits, Storage};
use crate::tensor::Tensor;
use posit::{PositFormat, Rounding};
use std::borrow::Cow;

/// A borrowed GEMM operand in either storage domain.
#[derive(Clone, Copy)]
pub enum Operand<'a> {
    /// Dense f32 elements.
    F32(&'a [f32]),
    /// Packed posit code words (see [`crate::Storage::Posit`]).
    Posit {
        /// The packed code words.
        bits: &'a PackedBits,
        /// Their posit format.
        fmt: PositFormat,
        /// The Eq. 2 scale exponent applied at encode time.
        scale_exp: i32,
    },
}

impl<'a> Operand<'a> {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Operand::F32(xs) => xs.len(),
            Operand::Posit { bits, .. } => bits.len(),
        }
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The operand's values as f32: a free borrow in the f32 domain, a
    /// decode (`posit · 2^scale_exp`) in the posit domain.
    fn to_f32_vec(self) -> Cow<'a, [f32]> {
        match self {
            Operand::F32(xs) => Cow::Borrowed(xs),
            Operand::Posit {
                bits,
                fmt,
                scale_exp,
            } => {
                let sf = (scale_exp as f32).exp2();
                Cow::Owned(bits.iter().map(|b| fmt.to_f32(b) * sf).collect())
            }
        }
    }
}

impl<'a> From<&'a [f32]> for Operand<'a> {
    fn from(xs: &'a [f32]) -> Operand<'a> {
        Operand::F32(xs)
    }
}

impl Tensor {
    /// Borrow this tensor as a GEMM operand in its storage domain.
    pub fn operand(&self) -> Operand<'_> {
        match self.storage() {
            Storage::F32(v) => Operand::F32(v),
            Storage::Posit {
                bits,
                format,
                scale_exp,
            } => Operand::Posit {
                bits,
                fmt: *format,
                scale_exp: *scale_exp,
            },
        }
    }
}

/// Build a quire-kernel plane for an operand: straight from the packed
/// code words when the formats agree (decode-once, no f32 staging),
/// through a decode→re-encode otherwise.
fn quire_plane(kernel: &PositGemm, op: Operand<'_>) -> PositPlane {
    match op {
        Operand::Posit {
            bits,
            fmt,
            scale_exp,
        } if fmt == kernel.format() => PositPlane::from_packed(fmt, bits, scale_exp),
        _ => kernel.encode_plane(&op.to_f32_vec()),
    }
}

/// Which kernel family executes a GEMM, and in which number system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Plain f32 kernels (default).
    #[default]
    F32,
    /// Posit-emulated: per-element quantization around the f32 kernel.
    PositEmulated {
        /// Operand/result format.
        fmt: PositFormat,
        /// Rounding mode for every quantization point.
        rounding: Rounding,
    },
    /// Posit-native: decode-once planes with exact quire accumulation.
    PositQuire {
        /// Operand/result format.
        fmt: PositFormat,
        /// Rounding mode for the single rounding on store.
        rounding: Rounding,
    },
}

impl Backend {
    /// Short stable name (`f32` | `posit-emulated` | `posit-quire`), e.g.
    /// for bench labels and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::F32 => "f32",
            Backend::PositEmulated { .. } => "posit-emulated",
            Backend::PositQuire { .. } => "posit-quire",
        }
    }

    /// The rounding mode the kernels actually apply: stochastic degrades to
    /// nearest-even (the kernels carry no per-element random stream).
    pub(crate) fn op_rounding(rounding: Rounding) -> Rounding {
        if rounding == Rounding::Stochastic {
            Rounding::NearestEven
        } else {
            rounding
        }
    }

    /// Quantize a slice to the posit grid (the sandwich's operand rounding).
    pub(crate) fn sandwich_quantize(fmt: &PositFormat, rounding: Rounding, xs: &[f32]) -> Vec<f32> {
        xs.iter()
            .map(|&x| fmt.to_f32(fmt.from_f32(x, rounding)))
            .collect()
    }

    /// Prepare a left operand once for repeated GEMMs under this backend —
    /// the decode-once contract extended across calls (e.g. a conv batch
    /// loop where the weight tile is the `A` operand of every sample's
    /// GEMM). For [`Backend::F32`] this is a free borrow; for the posit
    /// backends it pays the quantize/decode exactly once.
    pub fn prepare<'a>(&self, xs: &'a [f32]) -> PreparedOperand<'a> {
        self.prepare_operand(Operand::F32(xs))
    }

    /// [`Backend::prepare`] for an operand in either storage domain. A
    /// packed posit operand matching a [`Backend::PositQuire`] format is
    /// decoded once from its code words with no f32 staging.
    pub fn prepare_operand<'a>(&self, op: Operand<'a>) -> PreparedOperand<'a> {
        if let (Backend::F32, Operand::F32(xs)) = (self, op) {
            return PreparedOperand {
                inner: Prepared::F32(Cow::Borrowed(xs)),
            };
        }
        let inner = match self.prepare_owned(op) {
            PreparedOwned::F32(v) => Prepared::F32(Cow::Owned(v)),
            PreparedOwned::Emulated { fmt, rounding, q } => Prepared::Emulated {
                fmt,
                rounding,
                q: Cow::Owned(q),
            },
            PreparedOwned::Quire { kernel, plane } => Prepared::Quire {
                kernel,
                plane: Cow::Owned(plane),
            },
        };
        PreparedOperand { inner }
    }

    /// [`Backend::prepare_operand`] for a tensor operand, memoized in
    /// `cache` and keyed on the tensor's content stamp
    /// ([`crate::Tensor::version`]) plus this backend: the expensive part
    /// of preparation (posit decode into a plane, sandwich quantization, a
    /// packed-tensor decode to f32) is paid once per distinct weight
    /// content instead of once per GEMM. A plain f32 tensor under the f32
    /// backend bypasses the cache entirely — its preparation is a free
    /// borrow.
    ///
    /// Invalidation is automatic: any mutable borrow of the tensor's
    /// buffer, and any storage replacement (an optimizer step, a packed
    /// weight view install), refreshes the stamp and forces a rebuild on
    /// the next call.
    pub fn prepare_tensor_cached<'a>(
        &self,
        t: &'a Tensor,
        cache: &'a mut OperandCache,
    ) -> PreparedOperand<'a> {
        if let (Backend::F32, Storage::F32(v)) = (self, t.storage()) {
            // Free borrow — and drop whatever a previous backend cached
            // here, so a layer switched to f32 doesn't pin a stale decoded
            // plane for the rest of the process.
            cache.slot = None;
            return PreparedOperand {
                inner: Prepared::F32(Cow::Borrowed(v)),
            };
        }
        let version = t.version();
        let valid = cache
            .slot
            .as_ref()
            .is_some_and(|s| s.backend == *self && s.version == version);
        if posit_obs::enabled() {
            let o = cache_obs();
            if valid { &o.hits } else { &o.misses }.incr();
        }
        if !valid {
            cache.slot = Some(CacheSlot {
                backend: *self,
                version,
                prepared: self.prepare_owned(t.operand()),
            });
        }
        let slot = cache.slot.as_ref().expect("slot just filled");
        let inner = match &slot.prepared {
            PreparedOwned::F32(v) => Prepared::F32(Cow::Borrowed(v)),
            PreparedOwned::Emulated { fmt, rounding, q } => Prepared::Emulated {
                fmt: *fmt,
                rounding: *rounding,
                q: Cow::Borrowed(q),
            },
            PreparedOwned::Quire { kernel, plane } => Prepared::Quire {
                kernel: *kernel,
                plane: Cow::Borrowed(plane),
            },
        };
        PreparedOperand { inner }
    }

    /// The owned preparation every prepare path shares (the free-borrow
    /// case — f32 data under the f32 backend — is short-circuited by the
    /// callers before reaching here).
    fn prepare_owned(&self, op: Operand<'_>) -> PreparedOwned {
        match self {
            Backend::F32 => PreparedOwned::F32(op.to_f32_vec().into_owned()),
            Backend::PositEmulated { fmt, rounding } => {
                let rounding = Self::op_rounding(*rounding);
                PreparedOwned::Emulated {
                    fmt: *fmt,
                    rounding,
                    q: Self::sandwich_quantize(fmt, rounding, &op.to_f32_vec()),
                }
            }
            Backend::PositQuire { fmt, rounding } => {
                let kernel = PositGemm::new(*fmt, *rounding);
                let plane = quire_plane(&kernel, op);
                PreparedOwned::Quire { kernel, plane }
            }
        }
    }

    /// For [`Backend::PositQuire`]: the decode-once operand plane this
    /// backend's GEMMs would build for `op` (packed fast path included);
    /// `None` for the other backends. This is the operand entry point of
    /// the exact gradient buffers ([`crate::GradQuireBuf`]), which must see
    /// byte-identical planes to the kernels for the 1-shard ≡ serial
    /// guarantee to hold.
    pub fn quire_operand_plane(&self, op: Operand<'_>) -> Option<PositPlane> {
        match self {
            Backend::PositQuire { fmt, rounding } => {
                let kernel = PositGemm::new(*fmt, *rounding);
                Some(quire_plane(&kernel, op))
            }
            _ => None,
        }
    }

    /// For [`Backend::PositQuire`]: a zeroed [`crate::GradQuireBuf`] of
    /// `len` accumulators sized for this backend's format and rounding, a
    /// whole-batch reduction depth of `k_total`, and operand planes
    /// carrying at most `margin` total scale-shift bits; `None` for the
    /// other backends (exact sharded accumulation has no meaning there).
    pub fn grad_quire_buf(
        &self,
        len: usize,
        margin: u32,
        k_total: usize,
    ) -> Option<crate::GradQuireBuf> {
        match self {
            Backend::PositQuire { fmt, rounding } => Some(crate::GradQuireBuf::new(
                *fmt,
                Self::op_rounding(*rounding),
                margin,
                k_total,
                len,
            )),
            _ => None,
        }
    }

    /// `c += a[m,k] * b[k,n]` under this backend.
    pub fn gemm(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        self.prepare(a).gemm(m, k, n, b, c);
    }

    /// `c += a^T[m,k] * b[k,n]` (`a` stored `[k, m]`) under this backend.
    pub fn gemm_at_b(&self, m: usize, k: usize, n: usize, a_t: &[f32], b: &[f32], c: &mut [f32]) {
        self.prepare(a_t).gemm_at_b(m, k, n, b, c);
    }

    /// `c += a[m,k] * b^T[k,n]` (`b` stored `[n, k]`) under this backend.
    pub fn gemm_a_bt(&self, m: usize, k: usize, n: usize, a: &[f32], b_t: &[f32], c: &mut [f32]) {
        self.prepare(a).gemm_a_bt(m, k, n, b_t, c);
    }

    /// [`Backend::gemm`] over dual-domain operands.
    pub fn gemm_op(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: Operand<'_>,
        b: Operand<'_>,
        c: &mut [f32],
    ) {
        self.prepare_operand(a).gemm_op(m, k, n, b, c);
    }

    /// [`Backend::gemm_at_b`] over dual-domain operands.
    pub fn gemm_at_b_op(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a_t: Operand<'_>,
        b: Operand<'_>,
        c: &mut [f32],
    ) {
        self.prepare_operand(a_t).gemm_at_b_op(m, k, n, b, c);
    }

    /// [`Backend::gemm_a_bt`] over dual-domain operands.
    pub fn gemm_a_bt_op(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: Operand<'_>,
        b_t: Operand<'_>,
        c: &mut [f32],
    ) {
        self.prepare_operand(a).gemm_a_bt_op(m, k, n, b_t, c);
    }
}

/// Cached handles for the operand-cache hit/miss counters, so the
/// obs-enabled path costs two atomic ops per lookup instead of a
/// registry lock.
struct CacheObs {
    hits: posit_obs::Counter,
    misses: posit_obs::Counter,
}

fn cache_obs() -> &'static CacheObs {
    static OBS: std::sync::OnceLock<CacheObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = posit_obs::Registry::global();
        CacheObs {
            hits: reg.counter("tensor.cache.hits"),
            misses: reg.counter("tensor.cache.misses"),
        }
    })
}

/// A memo slot for [`Backend::prepare_tensor_cached`]: one prepared
/// operand, keyed by the backend that built it and the source tensor's
/// content stamp. Layers keep one per (weight, direction) so the per-step
/// weight decode is paid once per weight update instead of once per GEMM.
#[derive(Default)]
pub struct OperandCache {
    slot: Option<CacheSlot>,
}

impl OperandCache {
    /// An empty cache.
    pub fn new() -> OperandCache {
        OperandCache::default()
    }

    /// Drop the cached preparation (the next
    /// [`Backend::prepare_tensor_cached`] rebuilds). Invalidation is
    /// normally automatic through the tensor's content stamp; this exists
    /// for callers that want to release the memory.
    pub fn invalidate(&mut self) {
        self.slot = None;
    }

    /// True iff a preparation is currently cached.
    pub fn is_cached(&self) -> bool {
        self.slot.is_some()
    }
}

struct CacheSlot {
    backend: Backend,
    version: u64,
    prepared: PreparedOwned,
}

/// Owned twin of [`Prepared`], storable across calls.
enum PreparedOwned {
    F32(Vec<f32>),
    Emulated {
        fmt: PositFormat,
        rounding: Rounding,
        q: Vec<f32>,
    },
    Quire {
        kernel: PositGemm,
        plane: PositPlane,
    },
}

/// A GEMM left operand prepared once under a [`Backend`] (see
/// [`Backend::prepare`]); the right operand is prepared per call — or
/// passed pre-prepared through the `*_prepared` entry points.
pub struct PreparedOperand<'a> {
    inner: Prepared<'a>,
}

enum Prepared<'a> {
    F32(Cow<'a, [f32]>),
    Emulated {
        fmt: PositFormat,
        rounding: Rounding,
        q: Cow<'a, [f32]>,
    },
    Quire {
        kernel: PositGemm,
        plane: Cow<'a, PositPlane>,
    },
}

impl PreparedOperand<'_> {
    /// The emulated sandwich tail: requantize the f32 scratch result and
    /// accumulate it into `c`.
    fn emulated_store(fmt: &PositFormat, rounding: Rounding, tmp: &[f32], c: &mut [f32]) {
        for (ci, &t) in c.iter_mut().zip(tmp) {
            *ci += fmt.to_f32(fmt.from_f32(t, rounding));
        }
    }

    /// `c += self[m,k] * b[k,n]` (`self` is the prepared `A`).
    pub fn gemm(&self, m: usize, k: usize, n: usize, b: &[f32], c: &mut [f32]) {
        self.gemm_op(m, k, n, Operand::F32(b), c);
    }

    /// `c += self^T[m,k] * b[k,n]` (`self` is the prepared `A^T`, stored
    /// `[k, m]`).
    pub fn gemm_at_b(&self, m: usize, k: usize, n: usize, b: &[f32], c: &mut [f32]) {
        self.gemm_at_b_op(m, k, n, Operand::F32(b), c);
    }

    /// `c += self[m,k] * b^T[k,n]` (`self` is the prepared `A`; `b` stored
    /// `[n, k]`).
    pub fn gemm_a_bt(&self, m: usize, k: usize, n: usize, b_t: &[f32], c: &mut [f32]) {
        self.gemm_a_bt_op(m, k, n, Operand::F32(b_t), c);
    }

    /// [`PreparedOperand::gemm`] over a dual-domain right operand.
    pub fn gemm_op(&self, m: usize, k: usize, n: usize, b: Operand<'_>, c: &mut [f32]) {
        match &self.inner {
            Prepared::F32(a) => gemm::gemm(m, k, n, a, &b.to_f32_vec(), c),
            Prepared::Emulated { fmt, rounding, q } => {
                let qb = Backend::sandwich_quantize(fmt, *rounding, &b.to_f32_vec());
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm(m, k, n, q, &qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            Prepared::Quire { kernel, plane } => {
                let pb = quire_plane(kernel, b);
                kernel.gemm(m, k, n, plane, &pb, c);
            }
        }
    }

    /// [`PreparedOperand::gemm_at_b`] over a dual-domain right operand.
    pub fn gemm_at_b_op(&self, m: usize, k: usize, n: usize, b: Operand<'_>, c: &mut [f32]) {
        match &self.inner {
            Prepared::F32(a_t) => gemm::gemm_at_b(m, k, n, a_t, &b.to_f32_vec(), c),
            Prepared::Emulated { fmt, rounding, q } => {
                let qb = Backend::sandwich_quantize(fmt, *rounding, &b.to_f32_vec());
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm_at_b(m, k, n, q, &qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            Prepared::Quire { kernel, plane } => {
                let pb = quire_plane(kernel, b);
                kernel.gemm_at_b(m, k, n, plane, &pb, c);
            }
        }
    }

    /// `c += self[m,k] * b[k,n]` with *both* operands pre-prepared under
    /// the same backend — the entry point for a cached weight operand on
    /// the right-hand side (see [`Backend::prepare_tensor_cached`]).
    ///
    /// # Panics
    ///
    /// Panics if the operands were prepared under different backends.
    pub fn gemm_prepared(
        &self,
        m: usize,
        k: usize,
        n: usize,
        b: &PreparedOperand<'_>,
        c: &mut [f32],
    ) {
        match (&self.inner, &b.inner) {
            (Prepared::F32(a), Prepared::F32(bv)) => gemm::gemm(m, k, n, a, bv, c),
            (
                Prepared::Emulated { fmt, rounding, q },
                Prepared::Emulated {
                    fmt: bf,
                    rounding: br,
                    q: qb,
                },
            ) => {
                assert_eq!(
                    (fmt, rounding),
                    (bf, br),
                    "emulated operands quantized under different formats/roundings"
                );
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm(m, k, n, q, qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            (
                Prepared::Quire { kernel, plane },
                Prepared::Quire {
                    kernel: bk,
                    plane: pb,
                },
            ) => {
                assert_eq!(
                    kernel, bk,
                    "quire operands prepared under different formats/roundings"
                );
                kernel.gemm(m, k, n, plane, pb, c);
            }
            _ => panic!("GEMM operands prepared under different backends"),
        }
    }

    /// `c += self^T[m,k] * b[k,n]` (`self` stored `[k, m]`) with both
    /// operands pre-prepared under the same backend.
    ///
    /// # Panics
    ///
    /// Panics if the operands were prepared under different backends.
    pub fn gemm_at_b_prepared(
        &self,
        m: usize,
        k: usize,
        n: usize,
        b: &PreparedOperand<'_>,
        c: &mut [f32],
    ) {
        match (&self.inner, &b.inner) {
            (Prepared::F32(a_t), Prepared::F32(bv)) => gemm::gemm_at_b(m, k, n, a_t, bv, c),
            (
                Prepared::Emulated { fmt, rounding, q },
                Prepared::Emulated {
                    fmt: bf,
                    rounding: br,
                    q: qb,
                },
            ) => {
                assert_eq!(
                    (fmt, rounding),
                    (bf, br),
                    "emulated operands quantized under different formats/roundings"
                );
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm_at_b(m, k, n, q, qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            (
                Prepared::Quire { kernel, plane },
                Prepared::Quire {
                    kernel: bk,
                    plane: pb,
                },
            ) => {
                assert_eq!(
                    kernel, bk,
                    "quire operands prepared under different formats/roundings"
                );
                kernel.gemm_at_b(m, k, n, plane, pb, c);
            }
            _ => panic!("GEMM operands prepared under different backends"),
        }
    }

    /// `c += self[m,k] * b^T[k,n]` (`b` stored `[n, k]`) with both
    /// operands pre-prepared under the same backend.
    ///
    /// # Panics
    ///
    /// Panics if the operands were prepared under different backends.
    pub fn gemm_a_bt_prepared(
        &self,
        m: usize,
        k: usize,
        n: usize,
        b_t: &PreparedOperand<'_>,
        c: &mut [f32],
    ) {
        match (&self.inner, &b_t.inner) {
            (Prepared::F32(a), Prepared::F32(bv)) => gemm::gemm_a_bt(m, k, n, a, bv, c),
            (
                Prepared::Emulated { fmt, rounding, q },
                Prepared::Emulated {
                    fmt: bf,
                    rounding: br,
                    q: qb,
                },
            ) => {
                assert_eq!(
                    (fmt, rounding),
                    (bf, br),
                    "emulated operands quantized under different formats/roundings"
                );
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm_a_bt(m, k, n, q, qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            (
                Prepared::Quire { kernel, plane },
                Prepared::Quire {
                    kernel: bk,
                    plane: pb,
                },
            ) => {
                assert_eq!(
                    kernel, bk,
                    "quire operands prepared under different formats/roundings"
                );
                kernel.gemm_a_bt(m, k, n, plane, pb, c);
            }
            _ => panic!("GEMM operands prepared under different backends"),
        }
    }

    /// [`PreparedOperand::gemm_a_bt`] over a dual-domain right operand.
    pub fn gemm_a_bt_op(&self, m: usize, k: usize, n: usize, b_t: Operand<'_>, c: &mut [f32]) {
        match &self.inner {
            Prepared::F32(a) => gemm::gemm_a_bt(m, k, n, a, &b_t.to_f32_vec(), c),
            Prepared::Emulated { fmt, rounding, q } => {
                let qb = Backend::sandwich_quantize(fmt, *rounding, &b_t.to_f32_vec());
                let mut tmp = vec![0.0f32; c.len()];
                gemm::gemm_a_bt(m, k, n, q, &qb, &mut tmp);
                Self::emulated_store(fmt, *rounding, &tmp, c);
            }
            Prepared::Quire { kernel, plane } => {
                let pb = quire_plane(kernel, b_t);
                kernel.gemm_a_bt(m, k, n, plane, &pb, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FMT: PositFormat = PositFormat::of(16, 1);

    fn backends() -> [Backend; 3] {
        [
            Backend::F32,
            Backend::PositEmulated {
                fmt: FMT,
                rounding: Rounding::NearestEven,
            },
            Backend::PositQuire {
                fmt: FMT,
                rounding: Rounding::NearestEven,
            },
        ]
    }

    #[test]
    fn names() {
        let [f, e, q] = backends();
        assert_eq!(f.name(), "f32");
        assert_eq!(e.name(), "posit-emulated");
        assert_eq!(q.name(), "posit-quire");
        assert_eq!(Backend::default(), Backend::F32);
    }

    #[test]
    fn backends_agree_on_exact_inputs() {
        // Small powers of two: every intermediate is exact in (16,1) and in
        // f32, so all three backends must produce identical results.
        let a = [1.0f32, 2.0, -0.5, 4.0, 0.25, -8.0]; // [2, 3]
        let b = [2.0f32, 0.5, -1.0, 4.0, 0.125, -2.0]; // [3, 2]
        let mut want = vec![0.0f32; 4];
        gemm::gemm(2, 3, 2, &a, &b, &mut want);
        for bk in backends() {
            let mut c = vec![0.0f32; 4];
            bk.gemm(2, 3, 2, &a, &b, &mut c);
            assert_eq!(c, want, "{}", bk.name());
        }
    }

    #[test]
    fn packed_operands_agree_with_f32_operands() {
        // Exact inputs packed into (16,1) planes must produce the same
        // results as their f32 twins under every backend, in every operand
        // position, with and without a scale shift.
        let av = vec![1.0f32, 2.0, -0.5, 4.0, 0.25, -8.0]; // [2, 3]
        let bv = vec![2.0f32, 0.5, -1.0, 4.0, 0.125, -2.0]; // [3, 2]
        let ta = Tensor::from_vec(av.clone(), &[2, 3]);
        let tb = Tensor::from_vec(bv.clone(), &[3, 2]);
        for (ea, eb) in [(0, 0), (2, -1)] {
            let pa = ta.to_posit(FMT, ea, Rounding::NearestEven);
            let pb = tb.to_posit(FMT, eb, Rounding::NearestEven);
            for bk in backends() {
                let mut want = vec![0.0f32; 4];
                bk.gemm(2, 3, 2, &av, &bv, &mut want);
                let mut c = vec![0.0f32; 4];
                bk.gemm_op(2, 3, 2, pa.operand(), pb.operand(), &mut c);
                assert_eq!(c, want, "packed×packed {} e=({ea},{eb})", bk.name());
                let mut c = vec![0.0f32; 4];
                bk.gemm_op(2, 3, 2, ta.operand(), pb.operand(), &mut c);
                assert_eq!(c, want, "f32×packed {}", bk.name());
            }
        }
    }

    #[test]
    fn packed_format_mismatch_falls_back_to_reencode() {
        // A (16,1) quire kernel fed an (8,1)-packed operand decodes it to
        // f32 and re-encodes — same values here since they are exact in
        // both formats.
        let t = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[1, 3]);
        let p8 = t.to_posit(PositFormat::of(8, 1), 0, Rounding::NearestEven);
        let qui = Backend::PositQuire {
            fmt: FMT,
            rounding: Rounding::NearestEven,
        };
        let b = Tensor::from_vec(vec![2.0, 4.0, -1.0], &[3, 1]);
        let mut want = vec![0.0f32; 1];
        qui.gemm_op(1, 3, 1, t.operand(), b.operand(), &mut want);
        let mut c = vec![0.0f32; 1];
        qui.gemm_op(1, 3, 1, p8.operand(), b.operand(), &mut c);
        assert_eq!(c, want);
    }

    #[test]
    fn operand_len_and_from() {
        let t = Tensor::ones(&[4]).to_posit(FMT, 0, Rounding::NearestEven);
        assert_eq!(t.operand().len(), 4);
        assert!(!t.operand().is_empty());
        let xs = [1.0f32, 2.0];
        let op: Operand<'_> = xs.as_slice().into();
        assert_eq!(op.len(), 2);
    }

    #[test]
    fn transposed_dispatch_matches_plain() {
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2, 3]
        let a_t = [1.0f32, 4.0, 2.0, 5.0, 3.0, 6.0]; // [3, 2]
        let b = [1.0f32, -2.0, 0.5, 1.0, -1.0, 2.0]; // [3, 2]
        let b_t = [1.0f32, 0.5, -1.0, -2.0, 1.0, 2.0]; // [2, 3]
        for bk in backends() {
            let mut plain = vec![0.0f32; 4];
            bk.gemm(2, 3, 2, &a, &b, &mut plain);
            let mut c = vec![0.0f32; 4];
            bk.gemm_at_b(2, 3, 2, &a_t, &b, &mut c);
            assert_eq!(c, plain, "gemm_at_b {}", bk.name());
            let mut c = vec![0.0f32; 4];
            bk.gemm_a_bt(2, 3, 2, &a, &b_t, &mut c);
            assert_eq!(c, plain, "gemm_a_bt {}", bk.name());
        }
    }

    #[test]
    fn transposed_packed_operands_agree() {
        let a_t = Tensor::from_vec(vec![1.0, 4.0, 2.0, 0.25, -0.5, -8.0], &[3, 2]);
        let b = Tensor::from_vec(vec![1.0, -2.0, 0.5, 1.0, -1.0, 2.0], &[3, 2]);
        let b_t = b.transpose2();
        let a = a_t.transpose2();
        for bk in backends() {
            let mut plain = vec![0.0f32; 4];
            bk.gemm(2, 3, 2, a.data(), b.data(), &mut plain);
            let pat = a_t.to_posit(FMT, 0, Rounding::NearestEven);
            let pb = b.to_posit(FMT, 0, Rounding::NearestEven);
            let pbt = b_t.to_posit(FMT, 0, Rounding::NearestEven);
            let pa = a.to_posit(FMT, 0, Rounding::NearestEven);
            let mut c = vec![0.0f32; 4];
            bk.gemm_at_b_op(2, 3, 2, pat.operand(), pb.operand(), &mut c);
            assert_eq!(c, plain, "gemm_at_b_op {}", bk.name());
            let mut c = vec![0.0f32; 4];
            bk.gemm_a_bt_op(2, 3, 2, pa.operand(), pbt.operand(), &mut c);
            assert_eq!(c, plain, "gemm_a_bt_op {}", bk.name());
        }
    }

    #[test]
    fn posit_backends_accumulate_into_c() {
        for bk in backends() {
            let mut c = vec![100.0f32; 1];
            bk.gemm(1, 1, 1, &[2.0], &[3.0], &mut c);
            assert_eq!(c, vec![106.0], "{}", bk.name());
        }
    }

    #[test]
    fn stochastic_rounding_degrades_instead_of_panicking() {
        // The A4 ablation configures Rounding::Stochastic; the kernels
        // carry no per-element random stream, so every backend must degrade
        // to nearest-even rather than hit from_f64's stochastic assert.
        let a = [1.0f32, 2.0, -0.5, 4.0, 0.25, -8.0];
        let b = [2.0f32, 0.5, -1.0, 4.0, 0.125, -2.0];
        for bk in [
            Backend::PositEmulated {
                fmt: FMT,
                rounding: Rounding::Stochastic,
            },
            Backend::PositQuire {
                fmt: FMT,
                rounding: Rounding::Stochastic,
            },
        ] {
            let mut want = vec![0.0f32; 4];
            bk.gemm(2, 3, 2, &a, &b, &mut want);
            let mut c = vec![0.0f32; 4];
            bk.gemm_at_b(2, 3, 2, &[1.0, 4.0, 2.0, 0.25, -0.5, -8.0], &b, &mut c);
            let mut c = vec![0.0f32; 4];
            bk.gemm_a_bt(2, 3, 2, &a, &[2.0, -1.0, 0.125, 0.5, 4.0, -2.0], &mut c);
        }
    }

    #[test]
    fn cached_weight_operand_matches_per_call_preparation() {
        // The prepared×prepared entry points fed from an OperandCache must
        // reproduce the per-call gemm_*_op results under every backend, in
        // both the A·Bᵀ (forward) and A·B (backward-dX) positions.
        let w = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25, 4.0, -0.125], &[2, 3]);
        let x = [1.0f32, -2.0, 0.5, 8.0, 0.25, -1.0]; // [2, 3]
        for bk in backends() {
            let mut cache = OperandCache::new();
            let mut want = vec![0.0f32; 4];
            bk.gemm_a_bt_op(2, 3, 2, Operand::F32(&x), w.operand(), &mut want);
            for _ in 0..2 {
                let xp = bk.prepare_operand(Operand::F32(&x));
                let wp = bk.prepare_tensor_cached(&w, &mut cache);
                let mut c = vec![0.0f32; 4];
                xp.gemm_a_bt_prepared(2, 3, 2, &wp, &mut c);
                assert_eq!(c, want, "{} a_bt", bk.name());
            }
            // Caches engage for everything but the free-borrow f32 case.
            assert_eq!(cache.is_cached(), bk != Backend::F32);

            let w_t = w.transpose2(); // [3, 2] so W is the B of a plain gemm
            let mut cache_t = OperandCache::new();
            let mut want = vec![0.0f32; 4];
            bk.gemm_op(2, 3, 2, Operand::F32(&x), w_t.operand(), &mut want);
            let xp = bk.prepare_operand(Operand::F32(&x));
            let wp = bk.prepare_tensor_cached(&w_t, &mut cache_t);
            let mut c = vec![0.0f32; 4];
            xp.gemm_prepared(2, 3, 2, &wp, &mut c);
            assert_eq!(c, want, "{} plain", bk.name());
        }
    }

    #[test]
    fn cache_invalidates_on_content_change_and_backend_switch() {
        let qui = Backend::PositQuire {
            fmt: FMT,
            rounding: Rounding::NearestEven,
        };
        let mut w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let x = [1.0f32, 0.0, 0.0, 1.0];
        let mut cache = OperandCache::new();
        let run = |w: &Tensor, cache: &mut OperandCache, bk: Backend| {
            let xp = bk.prepare_operand(Operand::F32(&x));
            let wp = bk.prepare_tensor_cached(w, cache);
            let mut c = vec![0.0f32; 4];
            xp.gemm_prepared(2, 2, 2, &wp, &mut c);
            c
        };
        assert_eq!(run(&w, &mut cache, qui), vec![1.0, 2.0, 3.0, 4.0]);
        // Mutate the weight: the stamp changes, the stale plane must go.
        w.data_mut()[0] = 8.0;
        assert_eq!(run(&w, &mut cache, qui), vec![8.0, 2.0, 3.0, 4.0]);
        // Same content, different backend: must also rebuild, not reuse.
        let emu = Backend::PositEmulated {
            fmt: FMT,
            rounding: Rounding::NearestEven,
        };
        assert_eq!(run(&w, &mut cache, emu), vec![8.0, 2.0, 3.0, 4.0]);
        cache.invalidate();
        assert!(!cache.is_cached());
        assert_eq!(run(&w, &mut cache, qui), vec![8.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "different backends")]
    fn mixed_backend_prepared_operands_panic() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let qui = Backend::PositQuire {
            fmt: FMT,
            rounding: Rounding::NearestEven,
        };
        let pa = Backend::F32.prepare_operand(Operand::F32(&a));
        let pb = qui.prepare_operand(Operand::F32(&b));
        let mut c = vec![0.0f32; 1];
        pa.gemm_prepared(1, 2, 1, &pb, &mut c);
    }

    #[test]
    fn quire_avoids_the_double_rounding_of_the_sandwich() {
        // Exact dot: 1 + 2^-13 + 2^-40. In (16,1) the codes around it are
        // 1.0 (even LSB) and 1 + 2^-12, with midpoint 1 + 2^-13. The f32
        // accumulator of the sandwich drops the 2^-40 term (41 significant
        // bits needed), lands exactly on the midpoint and ties to the even
        // code 1.0; the quire keeps the term, sits above the midpoint and
        // must round up. Every operand is exactly representable in (16,1),
        // so the difference is purely the accumulator.
        let fmt = PositFormat::of(16, 1);
        let emu = Backend::PositEmulated {
            fmt,
            rounding: Rounding::NearestEven,
        };
        let qui = Backend::PositQuire {
            fmt,
            rounding: Rounding::NearestEven,
        };
        let a = [1.0f32, (-13f32).exp2(), (-20f32).exp2()];
        let b = [1.0f32, 1.0, (-20f32).exp2()];
        let mut ce = vec![0.0f32; 1];
        emu.gemm(1, 3, 1, &a, &b, &mut ce);
        let mut cq = vec![0.0f32; 1];
        qui.gemm(1, 3, 1, &a, &b, &mut cq);
        assert_eq!(ce[0], 1.0, "sandwich ties to even after dropping 2^-40");
        let up = 1.0 + (-12f32).exp2();
        assert_eq!(cq[0], up, "quire keeps 2^-40 and rounds up");
        // And the quire result must be on the (16,1) grid exactly.
        let back = fmt.to_f32(fmt.from_f32(cq[0], Rounding::NearestEven));
        assert_eq!(back, cq[0]);
    }

    #[test]
    fn packed_plane_skips_the_entry_rounding() {
        // An Eq. 2–3 shifted value that is OFF the raw posit grid:
        // P((8,1)) of 1.0625 = exact code with scale shift −4 applied →
        // value 1.0625·2^-4 = 0.06640625. Encoded with scale_exp = −4 the
        // packed plane carries it exactly; an f32 operand at the same value
        // would be re-rounded onto the raw (8,1) grid on entry (0.0664… is
        // not an (8,1) posit) and lose the tail.
        let fmt = PositFormat::of(8, 1);
        let qui = Backend::PositQuire {
            fmt,
            rounding: Rounding::NearestEven,
        };
        let x = 1.0625f32; // exact in (8,1)
        let shifted = x * (-4f32).exp2();
        let t = Tensor::from_vec(vec![shifted], &[1, 1]);
        let packed = t.to_posit(fmt, -4, Rounding::NearestEven);
        assert_eq!(packed.to_f32().data(), &[shifted], "encode is exact");
        let one = Tensor::from_vec(vec![16.0], &[1, 1]); // exact in (8,1)
                                                         // Packed path: exact product 1.0625.
        let mut c = vec![0.0f32; 1];
        qui.gemm_op(1, 1, 1, packed.operand(), one.operand(), &mut c);
        assert_eq!(c, vec![1.0625], "packed plane keeps the shifted value");
        // f32 path: the operand re-rounds to the nearest (8,1) posit
        // (0.0625 or 0.078125 — the tail is gone either way).
        let mut c = vec![0.0f32; 1];
        qui.gemm_op(1, 1, 1, t.operand(), one.operand(), &mut c);
        assert_ne!(c, vec![1.0625], "f32 staging re-rounds the operand");
    }
}
