//! Exact gradient accumulation buffers for deterministic data parallelism.
//!
//! A data-parallel training step shards a mini-batch across lanes, runs
//! per-shard backward passes, and reduces the per-shard gradients. With f32
//! partial sums the reduction order leaks into the result — the reason
//! distributed training is famously non-reproducible. The quire removes the
//! leak: every product of a gradient GEMM lands in an exact fixed-point
//! accumulator, per-shard accumulators merge by *integer addition*
//! ([`posit::Quire::merge_from`]), and the merged sum rounds to a posit
//! exactly once. The rounded gradient is therefore a pure function of the
//! product multiset — independent of shard count, shard boundaries, lane
//! assignment and reduction order.
//!
//! [`GradQuireBuf`] packages that for a whole gradient tensor: one exact
//! accumulator per element, the same narrow-`i128`/wide-limb-array choice
//! as the [`crate::posit_gemm`] kernels (decided from the *whole batch's*
//! reduction depth `k_total`, so every shard picks the same representation
//! and no shard can overflow the narrow guard bits), the kernels' zero/NaR
//! element conventions, and a single [`GradQuireBuf::round_into`] at the
//! end of the batch.

use crate::posit_gemm::{PositPlane, Unpacked};
use posit::{NarrowQuire, PositFormat, Quire, Rounding};

/// One exact quire accumulator per gradient element, mergeable across
/// shards and rounded once per optimizer step.
#[derive(Debug, Clone)]
pub struct GradQuireBuf {
    fmt: PositFormat,
    rounding: Rounding,
    margin: u32,
    accs: Accs,
}

#[derive(Debug, Clone)]
enum Accs {
    Narrow(Vec<NarrowQuire>),
    Wide(Vec<Quire>),
}

impl GradQuireBuf {
    /// A zeroed buffer of `len` accumulators for `fmt` products whose
    /// operand planes carry at most `margin` total scale-shift bits.
    ///
    /// `k_total` is the reduction depth of the *whole* batch (every product
    /// that will ever be accumulated into one element, across all shards
    /// and grad-accum steps): it drives the narrow-vs-wide choice exactly
    /// like the GEMM kernels' per-call `K`, so a shard never picks a
    /// representation the merged total would overflow.
    ///
    /// [`Rounding::Stochastic`] degrades to nearest-even like the kernels
    /// (no per-element random stream here either).
    pub fn new(
        fmt: PositFormat,
        rounding: Rounding,
        margin: u32,
        k_total: usize,
        len: usize,
    ) -> GradQuireBuf {
        let rounding = if rounding == Rounding::Stochastic {
            Rounding::NearestEven
        } else {
            rounding
        };
        let accs = match NarrowQuire::try_new(fmt, margin, k_total.max(1)) {
            Some(proto) => Accs::Narrow(vec![proto; len]),
            None => Accs::Wide(vec![Quire::with_margin(fmt, margin); len]),
        };
        GradQuireBuf {
            fmt,
            rounding,
            margin,
            accs,
        }
    }

    /// Accumulator count (one per gradient element).
    pub fn len(&self) -> usize {
        match &self.accs {
            Accs::Narrow(v) => v.len(),
            Accs::Wide(v) => v.len(),
        }
    }

    /// True iff the buffer holds no accumulators.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The format the accumulators round to.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// True iff the register-resident narrow representation was chosen.
    pub fn is_narrow(&self) -> bool {
        matches!(self.accs, Accs::Narrow(_))
    }

    /// One multiply-accumulate into element `idx`, with the kernels'
    /// conventions: zero operands are skipped, NaR absorbs.
    #[inline]
    pub fn mac(&mut self, idx: usize, x: Unpacked, y: Unpacked) {
        if x.sig == 0 || y.sig == 0 {
            if x.is_nar() || y.is_nar() {
                match &mut self.accs {
                    Accs::Narrow(v) => v[idx].set_nar(),
                    Accs::Wide(v) => v[idx].set_nar(),
                }
            }
            return;
        }
        let neg = x.neg != y.neg;
        let scale_sum = x.scale + y.scale;
        let prod = (x.sig as u128) * (y.sig as u128);
        match &mut self.accs {
            Accs::Narrow(v) => v[idx].add_product_parts(neg, scale_sum, prod),
            Accs::Wide(v) => v[idx].add_product_parts(neg, scale_sum, prod),
        }
    }

    /// Accumulate a single posit value into element `idx` (as `x · 1`).
    #[inline]
    pub fn add(&mut self, idx: usize, x: Unpacked) {
        self.mac(idx, x, Unpacked::ONE);
    }

    fn check_operands(&self, a: &PositPlane, b: &PositPlane) {
        assert_eq!(a.format(), self.fmt, "A plane format");
        assert_eq!(b.format(), self.fmt, "B plane format");
        assert!(
            a.quire_margin() + b.quire_margin() <= self.margin,
            "operand scale shifts exceed the buffer's construction margin"
        );
    }

    /// `buf[m,n] += aᵀ[m,k]·b[k,n]` with `a` stored `[k, m]` — the exact
    /// accumulation twin of [`crate::PositGemm::gemm_at_b`], minus the
    /// rounding (which happens once, in [`GradQuireBuf::round_into`]). This
    /// is the linear layer's `ΔW += dYᵀ·X` shape.
    ///
    /// # Panics
    ///
    /// Panics on format/length mismatches or operand margins beyond the
    /// buffer's construction margin.
    pub fn accumulate_at_b(
        &mut self,
        m: usize,
        k: usize,
        n: usize,
        a_t: &PositPlane,
        b: &PositPlane,
    ) {
        self.check_operands(a_t, b);
        assert_eq!(a_t.len(), k * m, "A^T length");
        assert_eq!(b.len(), k * n, "B length");
        assert_eq!(self.len(), m * n, "buffer length");
        let (ae, be) = (a_t.elems(), b.elems());
        for t in 0..k {
            let a_row = &ae[t * m..(t + 1) * m];
            let b_row = &be[t * n..(t + 1) * n];
            for (i, &x) in a_row.iter().enumerate() {
                if x.sig == 0 && !x.is_nar() {
                    continue;
                }
                for (j, &y) in b_row.iter().enumerate() {
                    self.mac(i * n + j, x, y);
                }
            }
        }
    }

    /// `buf[m,n] += a[m,k]·bᵀ[k,n]` with `b` stored `[n, k]` — the exact
    /// accumulation twin of [`crate::PositGemm::gemm_a_bt`]. This is the
    /// conv layer's per-sample `ΔW += dY·colᵀ` shape.
    ///
    /// # Panics
    ///
    /// Panics on format/length mismatches or operand margins beyond the
    /// buffer's construction margin.
    pub fn accumulate_a_bt(
        &mut self,
        m: usize,
        k: usize,
        n: usize,
        a: &PositPlane,
        b_t: &PositPlane,
    ) {
        self.check_operands(a, b_t);
        assert_eq!(a.len(), m * k, "A length");
        assert_eq!(b_t.len(), n * k, "B^T length");
        assert_eq!(self.len(), m * n, "buffer length");
        let (ae, be) = (a.elems(), b_t.elems());
        for i in 0..m {
            let a_run = &ae[i * k..(i + 1) * k];
            for j in 0..n {
                let b_run = &be[j * k..(j + 1) * k];
                for (&x, &y) in a_run.iter().zip(b_run) {
                    self.mac(i * n + j, x, y);
                }
            }
        }
    }

    /// `buf[j] += Σ_r p[r, j]` over a `[rows, cols]` plane — the exact
    /// accumulation of a bias gradient's column sums (`Δb += Σ_n dY`).
    ///
    /// # Panics
    ///
    /// Panics on format/length mismatches or an operand margin beyond the
    /// buffer's construction margin.
    pub fn accumulate_col_sums(&mut self, rows: usize, cols: usize, p: &PositPlane) {
        assert_eq!(p.format(), self.fmt, "plane format");
        assert!(
            p.quire_margin() <= self.margin,
            "operand scale shift exceeds the buffer's construction margin"
        );
        assert_eq!(p.len(), rows * cols, "plane length");
        assert_eq!(self.len(), cols, "buffer length");
        let pe = p.elems();
        for r in 0..rows {
            for (j, &x) in pe[r * cols..(r + 1) * cols].iter().enumerate() {
                self.add(j, x);
            }
        }
    }

    /// `buf[r] += Σ_c p[r, c]` over a `[rows, cols]` plane — the exact
    /// accumulation of a conv bias gradient's per-channel sums
    /// (`Δb[oc] += Σ_spatial dY[oc, ·]` per sample).
    ///
    /// # Panics
    ///
    /// Panics on format/length mismatches or an operand margin beyond the
    /// buffer's construction margin.
    pub fn accumulate_row_sums(&mut self, rows: usize, cols: usize, p: &PositPlane) {
        assert_eq!(p.format(), self.fmt, "plane format");
        assert!(
            p.quire_margin() <= self.margin,
            "operand scale shift exceeds the buffer's construction margin"
        );
        assert_eq!(p.len(), rows * cols, "plane length");
        assert_eq!(self.len(), rows, "buffer length");
        let pe = p.elems();
        for r in 0..rows {
            for &x in &pe[r * cols..(r + 1) * cols] {
                self.add(r, x);
            }
        }
    }

    /// Exact all-reduce step: integer-merge another shard's accumulators
    /// into this one (see [`posit::Quire::merge_from`] — associative,
    /// commutative, NaR-absorbing). Both buffers must come from the same
    /// construction (format, margin, narrow/wide choice, length), which
    /// holds whenever every shard sizes its buffer from the same
    /// whole-batch `k_total`.
    ///
    /// # Panics
    ///
    /// Panics on construction mismatches.
    pub fn merge_from(&mut self, other: &GradQuireBuf) {
        assert_eq!(self.fmt, other.fmt, "format mismatch");
        assert_eq!(self.margin, other.margin, "margin mismatch");
        assert_eq!(self.len(), other.len(), "length mismatch");
        match (&mut self.accs, &other.accs) {
            (Accs::Narrow(a), Accs::Narrow(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge_from(y);
                }
            }
            (Accs::Wide(a), Accs::Wide(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge_from(y);
                }
            }
            _ => panic!("GradQuireBuf::merge_from: narrow/wide representation mismatch"),
        }
    }

    /// Round every accumulator once and add the results into `out` — the
    /// single `P(·)` edge of the whole batch's gradient, bit-identical to a
    /// one-shard run because the exact sums are.
    ///
    /// # Panics
    ///
    /// Panics if `out` has a different length.
    pub fn round_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len(), "output length");
        let lut = posit::lut::to_f32_lut(self.fmt);
        let store = |code: u64, o: &mut f32| {
            *o += match lut {
                Some(l) => l[code as usize],
                None => self.fmt.to_f32(code),
            };
        };
        match &self.accs {
            Accs::Narrow(v) => {
                for (q, o) in v.iter().zip(out) {
                    store(q.to_posit(self.rounding, 0), o);
                }
            }
            Accs::Wide(v) => {
                for (q, o) in v.iter().zip(out) {
                    store(q.to_posit(self.rounding, 0), o);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posit_gemm::PositGemm;

    fn plane(fmt: PositFormat, xs: &[f32]) -> PositPlane {
        PositPlane::from_f32(fmt, xs, Rounding::NearestEven)
    }

    #[test]
    fn one_shard_accumulate_matches_the_gemm() {
        // A single buffer fed the whole batch must round to exactly what
        // the GEMM kernels produce — the anchor that makes "1 shard" and
        // "serial" the same thing.
        let fmt = PositFormat::of(16, 1);
        let (o, n, feat) = (3, 7, 5);
        let dy: Vec<f32> = (0..n * o)
            .map(|i| ((i * 13 % 23) as f32 - 11.0) * 0.25)
            .collect();
        let x: Vec<f32> = (0..n * feat)
            .map(|i| ((i * 7 % 19) as f32 - 9.0) * 0.125)
            .collect();
        let g = PositGemm::new(fmt, Rounding::NearestEven);
        let mut want = vec![0.0f32; o * feat];
        g.gemm_at_b(o, n, feat, &plane(fmt, &dy), &plane(fmt, &x), &mut want);

        let mut buf = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, n, o * feat);
        buf.accumulate_at_b(o, n, feat, &plane(fmt, &dy), &plane(fmt, &x));
        let mut got = vec![0.0f32; o * feat];
        buf.round_into(&mut got);
        assert_eq!(got, want, "at_b");

        let mut want = vec![0.0f32; o * feat];
        let dy_t: Vec<f32> = {
            // dy as [o, n] for the a_bt shape check
            let mut t = vec![0.0f32; o * n];
            for r in 0..n {
                for c in 0..o {
                    t[c * n + r] = dy[r * o + c];
                }
            }
            t
        };
        let x_t: Vec<f32> = {
            let mut t = vec![0.0f32; feat * n];
            for r in 0..n {
                for c in 0..feat {
                    t[c * n + r] = x[r * feat + c];
                }
            }
            t
        };
        g.gemm_a_bt(o, n, feat, &plane(fmt, &dy_t), &plane(fmt, &x_t), &mut want);
        let mut buf = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, n, o * feat);
        buf.accumulate_a_bt(o, n, feat, &plane(fmt, &dy_t), &plane(fmt, &x_t));
        let mut got = vec![0.0f32; o * feat];
        buf.round_into(&mut got);
        assert_eq!(got, want, "a_bt");
    }

    #[test]
    fn sharded_merge_matches_one_shard_any_split() {
        // Shard the batch every possible way (plus reversed reduce order):
        // the merged result must equal the 1-shard buffer bit-for-bit.
        let fmt = PositFormat::of(8, 1);
        let (o, n, feat) = (2, 12, 3);
        let dy: Vec<f32> = (0..n * o)
            .map(|i| ((i * 5 % 17) as f32 - 8.0) * 0.5)
            .collect();
        let x: Vec<f32> = (0..n * feat)
            .map(|i| ((i * 11 % 13) as f32 - 6.0) * 0.25)
            .collect();
        let mut whole = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, n, o * feat);
        whole.accumulate_at_b(o, n, feat, &plane(fmt, &dy), &plane(fmt, &x));
        let mut want = vec![0.0f32; o * feat];
        whole.round_into(&mut want);

        for shards in 1..=n {
            let mut parts = Vec::new();
            let base = n / shards;
            let extra = n % shards;
            let mut start = 0;
            for s in 0..shards {
                let rows = base + usize::from(s < extra);
                if rows == 0 {
                    continue;
                }
                let mut buf = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, n, o * feat);
                buf.accumulate_at_b(
                    o,
                    rows,
                    feat,
                    &plane(fmt, &dy[start * o..(start + rows) * o]),
                    &plane(fmt, &x[start * feat..(start + rows) * feat]),
                );
                parts.push(buf);
                start += rows;
            }
            let mut acc = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, n, o * feat);
            for p in parts.iter().rev() {
                acc.merge_from(p);
            }
            let mut got = vec![0.0f32; o * feat];
            acc.round_into(&mut got);
            assert_eq!(got, want, "{shards} shards");
        }
    }

    #[test]
    fn col_sums_are_shard_invariant_and_nar_absorbs() {
        let fmt = PositFormat::of(16, 1);
        let (rows, cols) = (9, 4);
        let mut dy: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 3 % 11) as f32 - 5.0) * 0.5)
            .collect();
        dy[cols + 2] = f32::NAN; // column 2 poisoned
        let mut whole = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, rows, cols);
        whole.accumulate_col_sums(rows, cols, &plane(fmt, &dy));
        let mut want = vec![0.0f32; cols];
        whole.round_into(&mut want);
        assert!(want[2].is_nan(), "NaR absorbs into its column");
        assert!(!want[0].is_nan() && !want[3].is_nan());

        let mut a = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, rows, cols);
        a.accumulate_col_sums(4, cols, &plane(fmt, &dy[..4 * cols]));
        let mut b = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, rows, cols);
        b.accumulate_col_sums(5, cols, &plane(fmt, &dy[4 * cols..]));
        b.merge_from(&a);
        let mut got = vec![0.0f32; cols];
        b.round_into(&mut got);
        for j in 0..cols {
            if want[j].is_nan() {
                assert!(got[j].is_nan());
            } else {
                assert_eq!(got[j], want[j]);
            }
        }
    }

    #[test]
    fn row_sums_match_transposed_col_sums() {
        let fmt = PositFormat::of(16, 1);
        let (rows, cols) = (3, 5);
        let xs: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 7 % 9) as f32 - 4.0) * 0.5)
            .collect();
        let mut by_row = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, cols, rows);
        by_row.accumulate_row_sums(rows, cols, &plane(fmt, &xs));
        let mut got = vec![0.0f32; rows];
        by_row.round_into(&mut got);
        let mut xt = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                xt[c * rows + r] = xs[r * cols + c];
            }
        }
        let mut by_col = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, cols, rows);
        by_col.accumulate_col_sums(cols, rows, &plane(fmt, &xt));
        let mut want = vec![0.0f32; rows];
        by_col.round_into(&mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn deep_k_total_picks_the_wide_representation() {
        // (16,1) narrows up to K=8192; a batch-wide reduction depth beyond
        // that must fall back to wide quires — and still merge/round the
        // same values.
        let fmt = PositFormat::of(16, 1);
        let narrow = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, 8192, 4);
        assert!(narrow.is_narrow());
        let wide = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, 8193, 4);
        assert!(!wide.is_narrow());
        let xs = [1.5f32, -0.25, 3.0, 0.0625];
        let mut a = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, 8193, 4);
        a.accumulate_col_sums(1, 4, &plane(fmt, &xs));
        let mut b = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, 8193, 4);
        b.merge_from(&a);
        let mut out = vec![0.0f32; 4];
        b.round_into(&mut out);
        assert_eq!(out, xs.to_vec());
    }

    #[test]
    #[should_panic(expected = "representation mismatch")]
    fn merging_across_representations_panics() {
        let fmt = PositFormat::of(16, 1);
        let mut a = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, 8, 2);
        let b = GradQuireBuf::new(fmt, Rounding::NearestEven, 0, 100_000, 2);
        a.merge_from(&b);
    }
}
