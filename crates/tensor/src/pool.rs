//! Pooling primitives (NCHW layout).

use crate::tensor::Tensor;

/// Max pooling: kernel `k`, stride `s`, no padding. Returns the pooled
/// tensor and, per output element, the flat input index of the winning
/// element (consumed by the backward pass).
///
/// # Panics
///
/// Panics unless the input is 4-D.
pub fn maxpool2d(input: &Tensor, k: usize, s: usize) -> (Tensor, Vec<usize>) {
    let sh = input.shape();
    assert_eq!(sh.len(), 4, "maxpool input must be NCHW");
    let (n, c, h, w) = (sh[0], sh[1], sh[2], sh[3]);
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.data();
    let out_data = out.data_mut();
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = base + (oy * s + ky) * w + (ox * s + kx);
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((i * c + ch) * oh + oy) * ow + ox;
                    out_data[oidx] = best;
                    argmax[oidx] = best_idx;
                }
            }
        }
    }
    (out, argmax)
}

/// Backward of [`maxpool2d`]: routes each output gradient to the winning
/// input position.
pub fn maxpool2d_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Tensor {
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    for (g, &idx) in grad_out.data().iter().zip(argmax) {
        gi[idx] += g;
    }
    grad_in
}

/// Global average pooling `[N,C,H,W] → [N,C]`.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    let sh = input.shape();
    assert_eq!(sh.len(), 4, "avgpool input must be NCHW");
    let (n, c, h, w) = (sh[0], sh[1], sh[2], sh[3]);
    let hw = (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    let out_data = out.data_mut();
    for i in 0..n {
        for ch in 0..c {
            let plane = &input.data()[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            out_data[i * c + ch] = plane.iter().sum::<f32>() / hw;
        }
    }
    out
}

/// Backward of [`global_avgpool`]: spreads each gradient uniformly over the
/// spatial plane.
pub fn global_avgpool_backward(grad_out: &Tensor, input_shape: &[usize]) -> Tensor {
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let hw = (h * w) as f32;
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    for i in 0..n {
        for ch in 0..c {
            let g = grad_out.data()[i * c + ch] / hw;
            for v in &mut gi[(i * c + ch) * h * w..(i * c + ch + 1) * h * w] {
                *v = g;
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    #[test]
    fn maxpool_small() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        );
        let (out, argmax) = maxpool2d(&input, 2, 2);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 8.0, -1.0, 0.75]);
        assert_eq!(argmax, vec![5, 7, 8, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]);
        let (_, argmax) = maxpool2d(&input, 2, 2);
        let grad_out = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]);
        let grad_in = maxpool2d_backward(&grad_out, &argmax, &[1, 1, 2, 2]);
        assert_eq!(grad_in.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_overlapping_stride() {
        let input = Tensor::from_vec((1..=9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let (out, _) = maxpool2d(&input, 2, 1);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn global_avgpool_and_backward() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]);
        let out = global_avgpool(&input);
        assert_eq!(out.shape(), &[1, 2]);
        assert_eq!(out.data(), &[4.0, 2.0]);
        let grad = Tensor::from_vec(vec![8.0, 4.0], &[1, 2]);
        let gi = global_avgpool_backward(&grad, &[1, 2, 2, 2]);
        assert_eq!(gi.data(), &[2.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avgpool_gradient_is_adjoint() {
        let mut rng = Prng::seed(8);
        let x = Tensor::rand_normal(&[2, 3, 4, 4], 0.0, 1.0, &mut rng);
        let y = Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut rng);
        let fx = global_avgpool(&x);
        let aty = global_avgpool_backward(&y, x.shape());
        let lhs: f64 = fx
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(aty.data())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
