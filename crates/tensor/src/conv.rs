//! im2col/col2im convolution primitives (NCHW layout).

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Rows of the im2col matrix: `C*KH*KW`.
    pub fn col_rows(&self) -> usize {
        self.c * self.kh * self.kw
    }

    /// Columns of the im2col matrix: `OH*OW`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unfold one `[C,H,W]` sample into the `[C*KH*KW, OH*OW]` column matrix.
pub fn im2col(input: &[f32], g: &ConvGeom, col: &mut [f32]) {
    debug_assert_eq!(input.len(), g.c * g.h * g.w);
    debug_assert_eq!(col.len(), g.col_rows() * g.col_cols());
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    for c in 0..g.c {
        let plane = &input[c * g.h * g.w..(c + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (c * g.kh + ki) * g.kw + kj;
                let dst = &mut col[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ki) as isize - g.pad as isize;
                    let base = oy * ow;
                    if iy < 0 || iy >= g.h as isize {
                        dst[base..base + ow].fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * g.w..(iy as usize + 1) * g.w];
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kj) as isize - g.pad as isize;
                        dst[base + ox] = if ix < 0 || ix >= g.w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Fold a `[C*KH*KW, OH*OW]` column matrix back into a `[C,H,W]` sample,
/// *accumulating* overlapping contributions (the adjoint of [`im2col`]).
pub fn col2im(col: &[f32], g: &ConvGeom, output: &mut [f32]) {
    debug_assert_eq!(output.len(), g.c * g.h * g.w);
    debug_assert_eq!(col.len(), g.col_rows() * g.col_cols());
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    for c in 0..g.c {
        let plane = &mut output[c * g.h * g.w..(c + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (c * g.kh + ki) * g.kw + kj;
                let src = &col[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ki) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.h as isize {
                        continue;
                    }
                    let dst_row = &mut plane[iy as usize * g.w..(iy as usize + 1) * g.w];
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kj) as isize - g.pad as isize;
                        if ix >= 0 && ix < g.w as isize {
                            dst_row[ix as usize] += src[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// Forward convolution: input `[N,C,H,W]`, weight `[O,C,KH,KW]`, optional
/// bias `[O]` → output `[N,O,OH,OW]`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
) -> Tensor {
    conv2d_with(crate::Backend::F32, input, weight, bias, stride, pad)
}

/// [`conv2d`] under an explicit compute [`crate::Backend`]: the per-sample
/// im2col GEMM runs on the selected kernel family.
///
/// The weight tile is prepared once per call and reused across every
/// sample in the batch: a posit-packed weight tensor matching a
/// [`crate::Backend::PositQuire`] format is decoded into a plane straight
/// from its code words (no f32 staging); f32 weights are decoded/quantized
/// once per call — the decode-once contract extended over the batch
/// dimension. A posit-packed *input* is decoded once at the im2col unfold
/// (the unfold is a gather, defined on dense values).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_with(
    backend: crate::Backend,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
) -> Tensor {
    // Prepare the weight operand once for the whole batch (decode-once
    // from packed bits or f32 for the quire backend, quantize-once for
    // the emulated one).
    let w_prep = backend.prepare_operand(weight.operand());
    conv2d_prepared(&w_prep, weight.shape(), input, bias, stride, pad)
}

/// [`conv2d_with`] over an already-prepared weight operand (`weight_shape`
/// is its `[O,C,KH,KW]` shape) — the entry point for a weight tile cached
/// across calls (see [`crate::Backend::prepare_tensor_cached`]), which
/// skips even the once-per-call weight preparation of [`conv2d_with`].
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_prepared(
    w_prep: &crate::PreparedOperand<'_>,
    weight_shape: &[usize],
    input: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let ish = input.shape();
    assert_eq!(ish.len(), 4, "input must be NCHW");
    assert_eq!(weight_shape.len(), 4, "weight must be OCKK");
    assert_eq!(ish[1], weight_shape[1], "channel mismatch");
    let (n, o) = (ish[0], weight_shape[0]);
    let g = ConvGeom {
        c: ish[1],
        h: ish[2],
        w: ish[3],
        kh: weight_shape[2],
        kw: weight_shape[3],
        stride,
        pad,
    };
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let mut col = vec![0.0f32; g.col_rows() * g.col_cols()];
    let sample = g.c * g.h * g.w;
    let out_sample = o * oh * ow;
    // Decode a packed input once for the unfold (the unfold is a gather,
    // defined on dense values).
    let input = input.dense();
    let out_data = out.data_mut();
    for i in 0..n {
        im2col(&input.data()[i * sample..(i + 1) * sample], &g, &mut col);
        let dst = &mut out_data[i * out_sample..(i + 1) * out_sample];
        w_prep.gemm(o, g.col_rows(), g.col_cols(), &col, dst);
        if let Some(b) = bias {
            for (oc, &bv) in b.iter().enumerate() {
                for v in &mut dst[oc * oh * ow..(oc + 1) * oh * ow] {
                    *v += bv;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    /// Direct (quadruple-loop) reference convolution.
    fn conv_ref(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&[f32]>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, c, h, w) = {
            let s = input.shape();
            (s[0], s[1], s[2], s[3])
        };
        let (o, _, kh, kw) = {
            let s = weight.shape();
            (s[0], s[1], s[2], s[3])
        };
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (w + 2 * pad - kw) / stride + 1;
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for i in 0..n {
            for oc in 0..o {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map_or(0.0, |b| b[oc]);
                        for ic in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let iy = (oy * stride + ki) as isize - pad as isize;
                                    let ix = (ox * stride + kj) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    let iv = input.data()
                                        [((i * c + ic) * h + iy as usize) * w + ix as usize];
                                    let wv = weight.data()[((oc * c + ic) * kh + ki) * kw + kj];
                                    acc += iv * wv;
                                }
                            }
                        }
                        out.data_mut()[((i * o + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv_matches_reference() {
        let mut rng = Prng::seed(5);
        for (n, c, h, w, o, k, s, p) in [
            (1, 1, 5, 5, 1, 3, 1, 0),
            (2, 3, 8, 8, 4, 3, 1, 1),
            (1, 2, 7, 9, 3, 3, 2, 1),
            (2, 4, 6, 6, 2, 1, 1, 0),
            (1, 3, 9, 9, 5, 5, 2, 2),
        ] {
            let input = Tensor::rand_normal(&[n, c, h, w], 0.0, 1.0, &mut rng);
            let weight = Tensor::rand_normal(&[o, c, k, k], 0.0, 0.5, &mut rng);
            let bias: Vec<f32> = (0..o).map(|_| rng.uniform(-0.5, 0.5)).collect();
            let got = conv2d(&input, &weight, Some(&bias), s, p);
            let want = conv_ref(&input, &weight, Some(&bias), s, p);
            assert_eq!(got.shape(), want.shape());
            for (g, w) in got.data().iter().zip(want.data()) {
                assert!((g - w).abs() < 1e-3, "({n},{c},{h},{w},{o},{k},{s},{p})");
            }
        }
    }

    #[test]
    fn geometry() {
        let g = ConvGeom {
            c: 3,
            h: 32,
            w: 32,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(g.out_h(), 32);
        assert_eq!(g.out_w(), 32);
        assert_eq!(g.col_rows(), 27);
        let g2 = ConvGeom { stride: 2, ..g };
        assert_eq!(g2.out_h(), 16);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        // that makes the conv backward pass correct.
        let mut rng = Prng::seed(6);
        let g = ConvGeom {
            c: 2,
            h: 6,
            w: 5,
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 1,
        };
        let x: Vec<f32> = (0..g.c * g.h * g.w)
            .map(|_| rng.uniform(-1.0, 1.0))
            .collect();
        let y: Vec<f32> = (0..g.col_rows() * g.col_cols())
            .map(|_| rng.uniform(-1.0, 1.0))
            .collect();
        let mut cx = vec![0.0; y.len()];
        im2col(&x, &g, &mut cx);
        let mut ay = vec![0.0; x.len()];
        col2im(&y, &g, &mut ay);
        let lhs: f64 = cx.iter().zip(&y).map(|(&a, &b)| (a * b) as f64).sum();
        let rhs: f64 = x.iter().zip(&ay).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backend_conv_matches_f32_on_exact_inputs() {
        // Inputs on coarse power-of-two grids are exactly representable in
        // (16,1) and every dot fits the f32 mantissa, so all three backends
        // must agree bitwise.
        use posit::{PositFormat, Rounding};
        let mut rng = Prng::seed(9);
        let quant = |t: &Tensor| t.map(|x| (x * 4.0).round() / 4.0);
        let input = quant(&Tensor::rand_normal(&[2, 2, 6, 6], 0.0, 1.0, &mut rng));
        let weight = quant(&Tensor::rand_normal(&[3, 2, 3, 3], 0.0, 0.5, &mut rng));
        let want = conv2d(&input, &weight, None, 1, 1);
        let fmt = PositFormat::of(16, 1);
        for backend in [
            crate::Backend::PositEmulated {
                fmt,
                rounding: Rounding::NearestEven,
            },
            crate::Backend::PositQuire {
                fmt,
                rounding: Rounding::NearestEven,
            },
        ] {
            let got = conv2d_with(backend, &input, &weight, None, 1, 1);
            assert_eq!(got.data(), want.data(), "{}", backend.name());
        }
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 conv with identity weights = channel mix with identity.
        let mut rng = Prng::seed(7);
        let input = Tensor::rand_normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]);
        let out = conv2d(&input, &weight, None, 1, 0);
        assert_eq!(out.data(), input.data());
    }
}
