//! Dual-domain tensor storage: packed posit planes as a first-class
//! citizen next to the dense f32 buffer.
//!
//! The paper's footprint claim — 8-bit posit training at FP32 accuracy with
//! a quarter of the memory traffic — only materializes if tensors *stay* in
//! posit bits between the Fig. 3 edges. [`Storage`] makes the domain
//! explicit: a tensor is either a dense `Vec<f32>` or a packed plane of
//! posit code words plus the Eq. 2 scale exponent that was applied when it
//! was encoded (`value = P(x / 2^e) · 2^e`). Transitions between the
//! domains happen only through [`crate::Tensor::to_posit`] /
//! [`crate::Tensor::to_f32`], so every encode/decode in the system is a
//! visible storage-domain crossing rather than a hidden per-element round
//! trip.

use posit::PositFormat;

/// Packed posit code words at the narrowest unsigned width that holds the
/// format's `n` bits: `u8` for `n ≤ 8`, `u16` for `n ≤ 16`, `u32` above.
///
/// This is the byte layout the paper's memory argument is about: a
/// posit(8,x) tensor occupies one byte per element, a quarter of its f32
/// shadow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedBits {
    /// One byte per code word (`n ≤ 8`).
    U8(Vec<u8>),
    /// Two bytes per code word (`8 < n ≤ 16`).
    U16(Vec<u16>),
    /// Four bytes per code word (`16 < n ≤ 32`).
    U32(Vec<u32>),
}

impl PackedBits {
    /// An empty buffer of the right width for `fmt`, with capacity `cap`.
    pub fn for_format(fmt: PositFormat, cap: usize) -> PackedBits {
        match fmt.n() {
            0..=8 => PackedBits::U8(Vec::with_capacity(cap)),
            9..=16 => PackedBits::U16(Vec::with_capacity(cap)),
            _ => PackedBits::U32(Vec::with_capacity(cap)),
        }
    }

    /// Bytes per element for a format's packed representation.
    pub fn bytes_per_elem(fmt: PositFormat) -> usize {
        match fmt.n() {
            0..=8 => 1,
            9..=16 => 2,
            _ => 4,
        }
    }

    /// Append a code word (low bits of `code`; the caller guarantees it
    /// fits the width chosen at construction).
    pub fn push(&mut self, code: u64) {
        match self {
            PackedBits::U8(v) => v.push(code as u8),
            PackedBits::U16(v) => v.push(code as u16),
            PackedBits::U32(v) => v.push(code as u32),
        }
    }

    /// The `i`-th code word, widened to `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> u64 {
        match self {
            PackedBits::U8(v) => v[i] as u64,
            PackedBits::U16(v) => v[i] as u64,
            PackedBits::U32(v) => v[i] as u64,
        }
    }

    /// Overwrite the `i`-th code word.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, code: u64) {
        match self {
            PackedBits::U8(v) => v[i] = code as u8,
            PackedBits::U16(v) => v[i] = code as u16,
            PackedBits::U32(v) => v[i] = code as u32,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            PackedBits::U8(v) => v.len(),
            PackedBits::U16(v) => v.len(),
            PackedBits::U32(v) => v.len(),
        }
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage footprint in bytes (`len × width`).
    pub fn nbytes(&self) -> usize {
        match self {
            PackedBits::U8(v) => v.len(),
            PackedBits::U16(v) => 2 * v.len(),
            PackedBits::U32(v) => 4 * v.len(),
        }
    }

    /// Iterate the code words widened to `u64`.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The raw byte-per-element buffer, when this is a `U8` plane.
    ///
    /// The batch decoders use this to stream code words without the
    /// per-element width dispatch of [`PackedBits::get`].
    pub fn as_u8(&self) -> Option<&[u8]> {
        match self {
            PackedBits::U8(v) => Some(v),
            _ => None,
        }
    }

    /// The raw two-byte-per-element buffer, when this is a `U16` plane.
    pub fn as_u16(&self) -> Option<&[u16]> {
        match self {
            PackedBits::U16(v) => Some(v),
            _ => None,
        }
    }

    /// The raw four-byte-per-element buffer, when this is a `U32` plane.
    pub fn as_u32(&self) -> Option<&[u32]> {
        match self {
            PackedBits::U32(v) => Some(v),
            _ => None,
        }
    }

    /// A contiguous sub-range `[start, end)` of code words as a fresh
    /// buffer of the same width. The words are copied verbatim — no
    /// decode/re-encode — so a slice of an encoded plane holds exactly
    /// the code words the full plane holds at those positions.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, start: usize, end: usize) -> PackedBits {
        match self {
            PackedBits::U8(v) => PackedBits::U8(v[start..end].to_vec()),
            PackedBits::U16(v) => PackedBits::U16(v[start..end].to_vec()),
            PackedBits::U32(v) => PackedBits::U32(v[start..end].to_vec()),
        }
    }

    /// Bytes per code word of this buffer (1, 2 or 4).
    pub fn word_bytes(&self) -> usize {
        match self {
            PackedBits::U8(_) => 1,
            PackedBits::U16(_) => 2,
            PackedBits::U32(_) => 4,
        }
    }

    /// Serialize the code words as a little-endian byte slab
    /// (`len × word_bytes` bytes) — the raw-array form the on-disk store
    /// feeds into its codec pipeline.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        match self {
            PackedBits::U8(v) => v.clone(),
            PackedBits::U16(v) => v.iter().flat_map(|w| w.to_le_bytes()).collect(),
            PackedBits::U32(v) => v.iter().flat_map(|w| w.to_le_bytes()).collect(),
        }
    }

    /// Rebuild a buffer from a little-endian byte slab previously produced
    /// by [`PackedBits::to_le_bytes`] at the width `fmt` implies. Returns
    /// `None` when the slab length is not a multiple of the word width.
    pub fn from_le_bytes(fmt: PositFormat, bytes: &[u8]) -> Option<PackedBits> {
        match PackedBits::bytes_per_elem(fmt) {
            1 => Some(PackedBits::U8(bytes.to_vec())),
            2 => {
                if !bytes.len().is_multiple_of(2) {
                    return None;
                }
                Some(PackedBits::U16(
                    bytes
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes([c[0], c[1]]))
                        .collect(),
                ))
            }
            _ => {
                if !bytes.len().is_multiple_of(4) {
                    return None;
                }
                Some(PackedBits::U32(
                    bytes
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                ))
            }
        }
    }
}

/// A storage-domain access error: the caller asked for a view the current
/// domain cannot provide (today: an f32 slice of a packed posit plane).
///
/// [`crate::Tensor::data`] keeps its panic — inside the trainer a packed
/// tensor at an f32-only boundary is a bug in the quantization edges, and
/// failing loudly is right. [`crate::Tensor::try_data`] returns this error
/// instead, for boundaries where the tensor came from *outside* (e.g. a
/// request handed to the inference server) and the right response is a
/// recoverable error, not a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// An f32 view was requested of a posit-domain tensor; carries the
    /// plane's format. Decode with `to_f32()`/`dense()` first.
    NotF32 {
        /// The posit format of the packed plane that was accessed.
        format: PositFormat,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NotF32 { format } => write!(
                f,
                "f32 view of a posit-domain tensor ({format}): call to_f32()/dense() first"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

/// Which domain a [`Storage`] lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageDomain {
    /// Dense `f32` buffer.
    F32,
    /// Packed posit code words.
    Posit,
}

/// The storage of a [`crate::Tensor`]: a dense f32 buffer or a packed
/// posit plane.
///
/// A posit plane represents `value[i] = P(x[i] / 2^scale_exp) · 2^scale_exp`
/// per the paper's Eq. 3: the stored code word is the posit of the *shifted*
/// value and `scale_exp` is the frozen Eq. 2 exponent (`log2 Sf`). A plane
/// encoded with `scale_exp = 0` is a plain `P(x)` tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum Storage {
    /// Dense row-major f32 elements.
    F32(Vec<f32>),
    /// Packed posit code words with their format and Eq. 2 scale exponent.
    Posit {
        /// The packed code words.
        bits: PackedBits,
        /// The posit format the codes belong to.
        format: PositFormat,
        /// `log2 Sf` applied at encode time (Eq. 2–3); the decoded value is
        /// `posit_value · 2^scale_exp`.
        scale_exp: i32,
    },
}

impl Storage {
    /// The domain this storage lives in.
    pub fn domain(&self) -> StorageDomain {
        match self {
            Storage::F32(_) => StorageDomain::F32,
            Storage::Posit { .. } => StorageDomain::Posit,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::Posit { bits, .. } => bits.len(),
        }
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage footprint in bytes: `4·len` for f32, `width·len` for posit.
    pub fn nbytes(&self) -> usize {
        match self {
            Storage::F32(v) => 4 * v.len(),
            Storage::Posit { bits, .. } => bits.nbytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_follows_format() {
        let p8 = PositFormat::of(8, 1);
        let p16 = PositFormat::of(16, 1);
        let p32 = PositFormat::of(32, 2);
        assert!(matches!(PackedBits::for_format(p8, 0), PackedBits::U8(_)));
        assert!(matches!(PackedBits::for_format(p16, 0), PackedBits::U16(_)));
        assert!(matches!(PackedBits::for_format(p32, 0), PackedBits::U32(_)));
        assert_eq!(PackedBits::bytes_per_elem(p8), 1);
        assert_eq!(PackedBits::bytes_per_elem(p16), 2);
        assert_eq!(PackedBits::bytes_per_elem(p32), 4);
    }

    #[test]
    fn push_get_set_roundtrip() {
        let fmt = PositFormat::of(8, 1);
        let mut b = PackedBits::for_format(fmt, 4);
        for code in [0u64, 0x40, 0x80, 0xFF] {
            b.push(code);
        }
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 0x40, 0x80, 0xFF]);
        b.set(1, 0x7F);
        assert_eq!(b.get(1), 0x7F);
        assert_eq!(b.nbytes(), 4);
    }

    #[test]
    fn le_byte_slab_roundtrips_at_every_width() {
        for (fmt, codes) in [
            (PositFormat::of(8, 1), vec![0u64, 0x40, 0x80, 0xFF]),
            (PositFormat::of(16, 1), vec![0, 0x4000, 0x8000, 0xFFFF]),
            (PositFormat::of(32, 2), vec![0, 0x4000_0000, 0xFFFF_FFFF]),
        ] {
            let mut b = PackedBits::for_format(fmt, codes.len());
            for &c in &codes {
                b.push(c);
            }
            let slab = b.to_le_bytes();
            assert_eq!(slab.len(), b.nbytes());
            assert_eq!(b.word_bytes(), PackedBits::bytes_per_elem(fmt));
            let back = PackedBits::from_le_bytes(fmt, &slab).unwrap();
            assert_eq!(back, b);
        }
        // A slab that is not a whole number of words is rejected.
        assert!(PackedBits::from_le_bytes(PositFormat::of(16, 1), &[1, 2, 3]).is_none());
        assert!(PackedBits::from_le_bytes(PositFormat::of(32, 2), &[1, 2, 3]).is_none());
    }

    #[test]
    fn footprint_is_the_paper_ratio() {
        // The headline: posit8 storage is 4× smaller than f32, posit16 2×.
        let n = 1000;
        let f32s = Storage::F32(vec![0.0; n]);
        let p8 = Storage::Posit {
            bits: {
                let mut b = PackedBits::for_format(PositFormat::of(8, 1), n);
                for _ in 0..n {
                    b.push(0);
                }
                b
            },
            format: PositFormat::of(8, 1),
            scale_exp: 0,
        };
        assert_eq!(f32s.nbytes(), 4 * n);
        assert_eq!(p8.nbytes(), n);
        assert_eq!(f32s.nbytes() / p8.nbytes(), 4);
        assert_eq!(f32s.domain(), StorageDomain::F32);
        assert_eq!(p8.domain(), StorageDomain::Posit);
        assert_eq!(p8.len(), n);
        assert!(!p8.is_empty());
    }
}
