//! The persistent worker pool behind every parallel kernel in this crate.
//!
//! The original row partitioner spawned fresh scoped threads per GEMM call
//! — a spawn+join pair per thread per layer per training step, which the
//! bench traces showed costing tens of microseconds per call at LeNet/MLP
//! shapes. This module keeps one set of workers alive for the process
//! lifetime (lazily spawned on the first parallel run) and hands them
//! statically partitioned index lanes over a channel, so a parallel region
//! costs a channel send and a latch wait instead of thread creation.
//!
//! Scheduling is deliberately work-stealing-free: a run over `count` tasks
//! splits them into `lanes` round-robin strides (`lane, lane + lanes, …`),
//! the caller executes lane 0 on its own thread and blocks until the
//! workers finish the rest. Task-to-lane assignment is a pure function of
//! `(count, lanes)`, and callers (see `par_rows` in [`crate::gemm`]) give
//! every task a self-contained, disjoint slice of the output — results are
//! bit-deterministic regardless of which worker runs what when.
//!
//! Nested parallel regions (a task that itself re-enters `run_indexed`)
//! degrade to serial execution on the worker's thread: the pool cannot
//! service a region from inside one of its own tasks without risking
//! deadlock, and every call site's split is already near the hardware
//! thread count.

#![allow(unsafe_code)]

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// Cached thread budget: the `POSIT_TENSOR_THREADS` environment variable
/// when set (deployment override, and the only way to exercise the pool
/// dispatch path on single-core CI boxes), `available_parallelism`
/// otherwise — cached because the std call re-reads cgroup files on every
/// invocation, which costs ~1 ms inside containers.
pub(crate) fn parallelism() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Some(n) = std::env::var("POSIT_TENSOR_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// Set inside pool workers (nested regions run serially) …
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// … and inside [`serial_scope`] (parallel dispatch disabled).
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// The parallelism kernels should plan for on this thread: 1 inside a pool
/// worker or a [`serial_scope`], the hardware thread count otherwise.
pub(crate) fn effective_parallelism() -> usize {
    if IN_WORKER.get() || FORCE_SERIAL.get() {
        1
    } else {
        parallelism()
    }
}

/// Run `f` with the pool disabled on this thread: every parallel region it
/// reaches executes serially on the caller. For benches and tests that
/// isolate single-thread kernel cost; not intended for production paths.
/// Panic-safe: the previous setting is restored on unwind too, so a caught
/// panic inside `f` cannot leave the thread permanently serial.
pub fn serial_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SERIAL.set(self.0);
        }
    }
    let _restore = Restore(FORCE_SERIAL.replace(true));
    f()
}

/// Completion latch: the caller waits until every worker lane checks in.
struct Latch {
    state: Mutex<usize>,
    cv: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(lanes: usize) -> Latch {
        Latch {
            state: Mutex::new(lanes),
            cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn check_in(&self, panicked: bool) {
        if panicked {
            self.panicked.store(true, Ordering::Relaxed);
        }
        let mut remaining = self.state.lock().expect("latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until every lane checked in; true iff any lane panicked.
    fn wait(&self) -> bool {
        let mut remaining = self.state.lock().expect("latch poisoned");
        while *remaining != 0 {
            remaining = self.cv.wait(remaining).expect("latch poisoned");
        }
        self.panicked.load(Ordering::Relaxed)
    }
}

/// One strided lane of a parallel region, shipped to a worker.
struct Job {
    /// The region's task body. Lifetime-erased: [`run_indexed`] blocks on
    /// the latch before returning, so the borrow outlives every use.
    task: &'static (dyn Fn(usize) + Sync),
    first: usize,
    stride: usize,
    count: usize,
    latch: Arc<Latch>,
}

struct Pool {
    senders: Vec<mpsc::Sender<Job>>,
}

/// Cached pool-dispatch telemetry handles (`tensor.workers.*`).
struct PoolObs {
    dispatches: posit_obs::Counter,
    serial_runs: posit_obs::Counter,
    items: posit_obs::Counter,
    lane_items: posit_obs::HistogramHandle,
}

fn pool_obs() -> &'static PoolObs {
    static OBS: OnceLock<PoolObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = posit_obs::Registry::global();
        PoolObs {
            dispatches: r.counter("tensor.workers.dispatches"),
            serial_runs: r.counter("tensor.workers.serial_runs"),
            items: r.counter("tensor.workers.items"),
            lane_items: r.histogram("tensor.workers.lane_items"),
        }
    })
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = parallelism().saturating_sub(1);
        let senders = (0..workers)
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Job>();
                std::thread::Builder::new()
                    .name(format!("posit-tensor-{i}"))
                    .spawn(move || {
                        IN_WORKER.set(true);
                        // Worker i records telemetry on counter lane i + 1
                        // (lane 0 is every caller thread), so hot-path
                        // counter increments never share a cache line.
                        posit_obs::set_lane(i + 1);
                        while let Ok(job) = rx.recv() {
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                let mut t = job.first;
                                while t < job.count {
                                    (job.task)(t);
                                    t += job.stride;
                                }
                            }));
                            job.latch.check_in(outcome.is_err());
                        }
                    })
                    .expect("failed to spawn posit-tensor worker");
                tx
            })
            .collect();
        Pool { senders }
    })
}

/// Execute `task(0..count)` across the worker pool with static round-robin
/// lane assignment (the caller runs lane 0 and blocks until all lanes
/// finish). Falls back to a serial loop when the pool would not help:
/// single task, single hardware thread, a [`serial_scope`], or a nested
/// region inside a pool worker.
///
/// # Panics
///
/// Re-raises a panicking caller-lane task after the region quiesces;
/// panics with a generic message when a worker-lane task panicked.
pub(crate) fn run_indexed(count: usize, task: &(dyn Fn(usize) + Sync)) {
    if count == 0 {
        return;
    }
    if count == 1 || effective_parallelism() <= 1 {
        if posit_obs::enabled() {
            let o = pool_obs();
            o.serial_runs.incr();
            o.items.add(count as u64);
        }
        for t in 0..count {
            task(t);
        }
        return;
    }
    let pool = pool();
    let lanes = (pool.senders.len() + 1).min(count);
    if posit_obs::enabled() {
        let o = pool_obs();
        o.dispatches.incr();
        o.items.add(count as u64);
        // Static round-robin split: lane `l` runs ceil((count - l) / lanes)
        // tasks. Recording the per-lane shares shows how evenly regions
        // split across the pool.
        for lane in 0..lanes {
            o.lane_items
                .record(((count - lane) as u64).div_ceil(lanes as u64));
        }
    }
    let latch = Arc::new(Latch::new(lanes - 1));
    // SAFETY: the latch wait below keeps this stack frame alive until every
    // worker has finished running `task`, so erasing the borrow's lifetime
    // cannot let a worker observe it dangling. The jobs are dropped by the
    // workers before they check in, and no worker retains `task` after its
    // lane completes.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    for lane in 1..lanes {
        pool.senders[lane - 1]
            .send(Job {
                task: task_static,
                first: lane,
                stride: lanes,
                count,
                latch: Arc::clone(&latch),
            })
            .expect("posit-tensor worker channel closed");
    }
    // The caller works lane 0. A panic here must still wait for the other
    // lanes (they borrow this frame) before unwinding further.
    let caller = catch_unwind(AssertUnwindSafe(|| {
        let mut t = 0;
        while t < count {
            task(t);
            t += lanes;
        }
    }));
    let worker_panicked = latch.wait();
    if let Err(payload) = caller {
        resume_unwind(payload);
    }
    if worker_panicked {
        panic!("posit-tensor worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_index_exactly_once() {
        for count in [0usize, 1, 2, 3, 17, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..count).map(|_| AtomicUsize::new(0)).collect();
            run_indexed(count, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} of {count}");
            }
        }
    }

    #[test]
    fn serial_scope_disables_dispatch_and_restores() {
        let out = serial_scope(|| {
            assert_eq!(effective_parallelism(), 1);
            let hits = AtomicUsize::new(0);
            run_indexed(100, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            hits.load(Ordering::Relaxed)
        });
        assert_eq!(out, 100);
        assert_eq!(effective_parallelism(), parallelism());
    }

    #[test]
    fn serial_scope_restores_on_panic() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            serial_scope(|| panic!("boom"));
        }));
        assert!(result.is_err());
        assert_eq!(
            effective_parallelism(),
            parallelism(),
            "a caught panic must not leave the thread serial"
        );
    }

    #[test]
    fn nested_regions_run_serially_not_deadlock() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(8, &|outer| {
            run_indexed(8, &|inner| {
                hits[outer * 8 + inner].fetch_add(1, Ordering::Relaxed);
            });
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn caller_lane_panic_propagates_after_quiescing() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(16, &|i| {
                if i == 0 {
                    panic!("caller lane boom");
                }
            });
        }));
        let msg = *result.unwrap_err().downcast::<&str>().unwrap();
        assert_eq!(msg, "caller lane boom");
        // The pool must remain serviceable after a panicked region.
        let hits = AtomicUsize::new(0);
        run_indexed(16, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn worker_lane_panic_is_reported() {
        if parallelism() <= 1 {
            return; // no worker lanes to panic on a single-core box
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(64, &|i| {
                if i == 1 {
                    panic!("worker lane boom");
                }
            });
        }));
        assert!(result.is_err());
        let hits = AtomicUsize::new(0);
        run_indexed(64, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64, "pool survives");
    }
}
