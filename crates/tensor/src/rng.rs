//! Seeded pseudo-random streams (uniform + Gaussian).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream. Thin wrapper over `SmallRng` with the
/// Box–Muller transform for Gaussians (keeping the dependency surface to
/// the plain `rand` crate).
#[derive(Debug, Clone)]
pub struct Prng {
    rng: SmallRng,
    spare: Option<f32>,
}

impl Prng {
    /// Seeded stream; the same seed always produces the same sequence.
    pub fn seed(seed: u64) -> Prng {
        Prng {
            rng: SmallRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Derive an independent child stream (for per-layer init etc.).
    pub fn fork(&mut self, salt: u64) -> Prng {
        let s = self.rng.random::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Prng::seed(s)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.rng.random::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.rng.random_range(0..n)
    }

    /// Raw 64-bit word.
    pub fn word(&mut self) -> u64 {
        self.rng.random::<u64>()
    }

    /// Standard Gaussian via Box–Muller (cached pair).
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1 = self.rng.random::<f32>();
            let u2 = self.rng.random::<f32>();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (std::f32::consts::TAU * u2).sin_cos();
            self.spare = Some(r * s);
            return r * c;
        }
    }

    /// Gaussian with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Fisher–Yates shuffle of a slice of indices.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Prng::seed(7);
        let mut b = Prng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.word(), b.word());
        }
        let mut c = Prng::seed(8);
        assert_ne!(a.word(), c.word());
    }

    #[test]
    fn normal_moments() {
        let mut r = Prng::seed(1);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = Prng::seed(3);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
            let k = r.below(10);
            assert!(k < 10);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::seed(11);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_differ() {
        let mut r = Prng::seed(5);
        let mut a = r.fork(1);
        let mut b = r.fork(2);
        assert_ne!(a.word(), b.word());
    }
}
