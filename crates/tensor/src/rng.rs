//! Seeded pseudo-random streams (uniform + Gaussian).

/// The xoshiro256++ core (Blackman & Vigna), seeded via splitmix64 —
/// the same construction `rand::rngs::SmallRng` uses on 64-bit targets,
/// inlined here to keep the workspace dependency-free for offline builds.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        // splitmix64 stream to fill the state; never all-zero.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256pp {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform f32 in `[0, 1)` from the top 24 bits.
    fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A deterministic random stream: xoshiro256++ with the Box–Muller
/// transform for Gaussians (self-contained; no external crates).
#[derive(Debug, Clone)]
pub struct Prng {
    rng: Xoshiro256pp,
    spare: Option<f32>,
}

impl Prng {
    /// Seeded stream; the same seed always produces the same sequence.
    pub fn seed(seed: u64) -> Prng {
        Prng {
            rng: Xoshiro256pp::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Derive an independent child stream (for per-layer init etc.).
    pub fn fork(&mut self, salt: u64) -> Prng {
        let s = self.rng.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Prng::seed(s)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.rng.unit_f32()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Multiply-shift range reduction (Lemire, bias < 2^-64).
        ((self.rng.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Raw 64-bit word.
    pub fn word(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Standard Gaussian via Box–Muller (cached pair).
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1 = self.rng.unit_f32();
            let u2 = self.rng.unit_f32();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (std::f32::consts::TAU * u2).sin_cos();
            self.spare = Some(r * s);
            return r * c;
        }
    }

    /// Gaussian with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Fisher–Yates shuffle of a slice of indices.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Snapshot the full stream state — the four xoshiro words plus the
    /// cached Box–Muller spare — so a consumer (e.g. a training checkpoint)
    /// can persist the stream and resume it bit-exactly.
    pub fn state(&self) -> PrngState {
        PrngState {
            words: self.rng.s,
            spare: self.spare,
        }
    }

    /// Rebuild a stream from a [`Prng::state`] snapshot; the restored
    /// stream continues exactly where the snapshotted one would have.
    pub fn from_state(state: PrngState) -> Prng {
        Prng {
            rng: Xoshiro256pp { s: state.words },
            spare: state.spare,
        }
    }
}

/// A serializable snapshot of a [`Prng`] stream (see [`Prng::state`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrngState {
    /// The xoshiro256++ state words.
    pub words: [u64; 4],
    /// The cached Box–Muller spare Gaussian, if one is pending.
    pub spare: Option<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Prng::seed(7);
        let mut b = Prng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.word(), b.word());
        }
        let mut c = Prng::seed(8);
        assert_ne!(a.word(), c.word());
    }

    #[test]
    fn state_snapshot_resumes_bit_exactly() {
        let mut a = Prng::seed(17);
        for _ in 0..37 {
            a.word();
        }
        // Leave a Box–Muller spare pending so the snapshot must carry it.
        let _ = a.standard_normal();
        let snap = a.state();
        let mut b = Prng::from_state(snap);
        for _ in 0..100 {
            assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
            assert_eq!(a.word(), b.word());
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Prng::seed(1);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = Prng::seed(3);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
            let k = r.below(10);
            assert!(k < 10);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::seed(11);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_differ() {
        let mut r = Prng::seed(5);
        let mut a = r.fork(1);
        let mut b = r.fork(2);
        assert_ne!(a.word(), b.word());
    }
}
