//! # posit-dnn
//!
//! A full-system Rust reproduction of *"Training Deep Neural Networks Using
//! Posit Number System"* (Lu et al., SOCC 2019).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`posit`] — the posit number system (codec, arithmetic, quire,
//!   Algorithm 1 quantizer);
//! * [`hw`] — the gate-level posit MAC of Figs. 4–6 with a 28 nm
//!   cost model (Tables IV–V);
//! * [`tensor`] — the f32 tensor substrate;
//! * [`nn`] — layers with the explicit Fig. 3 dataflow;
//! * [`data`] — synthetic dataset generators;
//! * [`models`] — the ResNet-18 family;
//! * [`train`] — the paper's training methodology
//!   (warm-up, Eq. 2–3 scaling, es selection, Table III configs).
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use posit;
pub use posit_data as data;
pub use posit_hw as hw;
pub use posit_models as models;
pub use posit_nn as nn;
pub use posit_tensor as tensor;
pub use posit_train as train;
