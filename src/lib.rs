//! # posit-dnn
//!
//! A full-system Rust reproduction of *"Training Deep Neural Networks Using
//! Posit Number System"* (Lu et al., SOCC 2019).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`posit`] — the posit number system (codec, arithmetic, quire,
//!   Algorithm 1 quantizer);
//! * [`hw`] — the gate-level posit MAC of Figs. 4–6 with a 28 nm
//!   cost model (Tables IV–V);
//! * [`tensor`] — the tensor substrate: f32 kernels, the decode-once
//!   posit GEMM with exact quire accumulation, and the
//!   [`tensor::Backend`] switch between them;
//! * [`nn`] — layers with the explicit Fig. 3 dataflow;
//! * [`data`] — synthetic dataset generators;
//! * [`models`] — the ResNet-18 family;
//! * [`train`] — the paper's training methodology
//!   (warm-up, Eq. 2–3 scaling, es selection, Table III configs);
//! * [`store`] — chunked, codec-pipelined on-disk storage for packed
//!   posit tensors (checkpoint v2, bit-exact kill/resume training);
//! * [`serve`] — in-process inference serving: a submit/poll server with
//!   a deterministic dynamic batcher whose batched logits are
//!   bit-identical to single-sample inference;
//! * [`obs`] — determinism-safe telemetry: a metrics registry (counters,
//!   gauges, log-linear histograms, span timers) instrumenting the
//!   kernels, quantization edges, trainer, store and server, off by
//!   default (`POSIT_OBS=1`) and provably invisible in the numerics.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! # Quick start
//!
//! The paper's `P(n,es)` operator in three lines — a format, a quantizer,
//! a value pushed onto the posit grid (doctests use `?`, so the hidden
//! return type is fallible):
//!
//! ```
//! use posit_dnn::posit::{PositFormat, PositQuantizer, Rounding};
//!
//! let fmt = PositFormat::new(8, 1)?;
//! let mut p = PositQuantizer::new(fmt, Rounding::ToZero);
//! // In-range values round toward zero onto the (8,1) grid ...
//! assert_eq!(p.quantize(2.5), 2.5);
//! assert!(p.quantize(0.3) <= 0.3);
//! // ... while |x| > maxpos clips and |x| < minpos flushes (Algorithm 1).
//! assert_eq!(p.quantize(1e9), fmt.maxpos() as f32);
//! assert_eq!(p.quantize(1e-9), 0.0);
//! # Ok::<(), posit_dnn::posit::InvalidFormatError>(())
//! ```
//!
//! Training with the paper's recipe goes through [`train`]:
//!
//! ```no_run
//! use posit_dnn::data::SyntheticCifar;
//! use posit_dnn::train::{QuantSpec, RunOptions, TrainConfig, Trainer};
//!
//! let gen = SyntheticCifar::new(16, 42);
//! let (train, test) = (gen.train(2000, 1), gen.test(500, 1));
//! let config = TrainConfig::cifar_scaled(8, 10).with_quant(QuantSpec::cifar_paper());
//! let report = Trainer::resnet(&config)
//!     .run(RunOptions::new(&train, &test, &config))
//!     .unwrap();
//! println!("posit accuracy: {:.2}%", 100.0 * report.final_test_acc);
//! ```

pub use posit;
pub use posit_data as data;
pub use posit_fault as fault;
pub use posit_hw as hw;
pub use posit_models as models;
pub use posit_nn as nn;
pub use posit_obs as obs;
pub use posit_serve as serve;
pub use posit_store as store;
pub use posit_tensor as tensor;
pub use posit_train as train;
