#!/usr/bin/env sh
# CI gate for the posit-dnn workspace. Run from the repo root.
#
# Order: cheap static checks first, then the tier-1 build+test gate.
# Everything must exit 0; clippy runs with -D warnings (no lint baseline —
# the tree is clippy-clean, keep it that way).
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo check --examples"
cargo check --examples

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q  (tier-1 gate)"
cargo test -q

echo "==> OK"
