#!/usr/bin/env sh
# CI gate for the posit-dnn workspace — thin wrapper over the staged
# pipeline in ci/ (fmt, lint, test, chaos-smoke, bench-smoke, doc). See ci/run.sh for
# the stage list, per-stage timing and the --quick mode.
exec sh "$(dirname "$0")/ci/run.sh" "$@"
