#!/usr/bin/env sh
# CI stage: documentation. Rustdoc runs with -D warnings so broken
# intra-doc links (e.g. in the backend kernel docs) fail the gate; doctests
# themselves run in the test stage.
set -eu
cd "$(dirname "$0")/.."

echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
