#!/usr/bin/env sh
# CI stage: the tier-1 gate — release build plus the full test suite.
#
#   --quick   skip the release build (debug tests only)
set -eu
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    [ "$arg" = "--quick" ] && quick=1
done

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release
else
    echo "==> (--quick: skipping cargo build --release)"
fi

echo "==> cargo test -q"
cargo test -q
