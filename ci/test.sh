#!/usr/bin/env sh
# CI stage: the tier-1 gate — release build plus the full test suite, and
# the exhaustive packed-storage suite re-run in release mode (its code-point
# sweeps are cheap there, and release is where the encode/decode fast paths
# actually run).
#
#   --quick   skip the release build and the release-mode storage suite
#             (debug tests only)
set -eu
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    [ "$arg" = "--quick" ] && quick=1
done

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release
else
    echo "==> (--quick: skipping cargo build --release)"
fi

echo "==> cargo test -q"
cargo test -q

if [ "$quick" -eq 0 ]; then
    echo "==> cargo test -q --release -p posit-tensor --test storage_exhaustive"
    cargo test -q --release -p posit-tensor --test storage_exhaustive
    echo "==> cargo test -q --release -p posit-tensor --test posit_gemm_exhaustive"
    cargo test -q --release -p posit-tensor --test posit_gemm_exhaustive
    echo "==> cargo test -q --release -p posit-store --test store_exhaustive"
    cargo test -q --release -p posit-store --test store_exhaustive
    # The exact data-parallel determinism suite re-runs in release on a
    # forced 4-thread pool: the debug run above already covers the sweep,
    # but the narrow-quire fast paths and the pooled kernels only run
    # their release code here (the parent pins POSIT_TENSOR_THREADS per
    # child, so the outer value just widens the parent's own pool).
    echo "==> POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-train --test data_parallel_determinism"
    POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-train --test data_parallel_determinism
    # Same reasoning for the serving batcher: the debug run covers the
    # semantics, the release run pins batched-vs-single bit-equality on
    # the release quire kernels (children pin their own thread counts).
    echo "==> POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-serve --test batcher_determinism"
    POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-serve --test batcher_determinism
    # Determinism under instrumentation: the obs suites force recording
    # off for their own baselines, so POSIT_OBS=1 here exercises the
    # env-enabled path end to end (training + serving re-run with every
    # release-mode kernel counter live) and the fingerprints must still
    # match the uninstrumented bits.
    echo "==> POSIT_OBS=1 POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-train --test obs_determinism"
    POSIT_OBS=1 POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-train --test obs_determinism
    echo "==> POSIT_OBS=1 POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-serve --test obs_determinism"
    POSIT_OBS=1 POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-serve --test obs_determinism
    # The chaos matrix (ci/chaos-smoke.sh runs it in debug) re-runs in
    # release on the widened pool: fault-recovery bit-exactness must hold
    # on the release kernels and under threaded execution, since that is
    # what production resume actually runs.
    echo "==> POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-train --test fault_matrix"
    POSIT_TENSOR_THREADS=4 cargo test -q --release -p posit-train --test fault_matrix
else
    echo "==> (--quick: skipping release-mode exhaustive suites)"
fi
