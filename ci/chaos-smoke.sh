#!/usr/bin/env sh
# CI stage: chaos smoke. Runs the fault-injection suites on their pinned
# seed sets — the `posit-fault` plan/store/traffic unit tests, the store
# chaos drills, the serve overload/deadline shedding suite, and the
# training chaos matrix (`crates/core/tests/fault_matrix.rs`, every
# `FaultKind` × pinned seeds). The invariant under test everywhere:
# injected faults are retried away or surface as typed errors, recovery
# is bit-exact, and nothing ever panics or corrupts silently.
#
# Debug-mode on purpose: debug_asserts stay live and the suites are sized
# for it. `ci/test.sh` re-runs the matrix in release under a forced
# 4-thread pool so the release kernels see the same faults.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo test -q -p posit-fault"
cargo test -q -p posit-fault

echo "==> cargo test -q -p posit-serve --test overload_shedding"
cargo test -q -p posit-serve --test overload_shedding

echo "==> cargo test -q -p posit-train --test fault_matrix"
cargo test -q -p posit-train --test fault_matrix
