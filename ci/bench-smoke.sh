#!/usr/bin/env sh
# CI stage: bench smoke. Runs every criterion bench target once under the
# shim's quick mode (CRITERION_QUICK=1 → one iteration per benchmark), so
# regressions that only break `benches/` are caught before merge without
# paying real measurement time.
#
# Every run also emits a machine-readable BENCH_<stage>.json at the repo
# root (bench name → ns/iter), assembled from the shim's CRITERION_JSON
# NDJSON stream, so the perf trajectory of a branch can be tracked by
# diffing two JSON files instead of scraping bench stdout.
set -eu
cd "$(dirname "$0")/.."

# Absolute paths: cargo runs each bench binary from its package directory,
# so a relative CRITERION_JSON would scatter files across the workspace.
root="$(pwd)"
stage=bench-smoke
ndjson="$root/target/criterion-${stage}.ndjson"
json="$root/BENCH_${stage}.json"
mkdir -p "$root/target"
rm -f "$ndjson"

# Keep the committed numbers around: the quire-GEMM regression gate below
# compares the fresh run against them before they are overwritten.
old_json="$root/target/criterion-${stage}-committed.json"
rm -f "$old_json"
if [ -s "$json" ]; then
    cp "$json" "$old_json"
fi

echo "==> CRITERION_QUICK=1 cargo bench -p posit-bench"
CRITERION_QUICK=1 CRITERION_JSON="$ndjson" cargo bench -p posit-bench

# Assemble {"bench": ns, …} from the one-object-per-line NDJSON stream.
if [ -s "$ndjson" ]; then
    awk '
        {
            line = $0
            sub(/^\{"bench":/, "", line)
            sub(/,"ns_per_iter":/, ": ", line)
            sub(/\}$/, "", line)
            lines[NR] = line
        }
        END {
            print "{"
            for (i = 1; i <= NR; i++)
                printf "  %s%s\n", lines[i], (i < NR ? "," : "")
            print "}"
        }
    ' "$ndjson" > "$json"
    echo "==> wrote ${json#"$root"/} ($(wc -l < "$ndjson") benchmarks)"
else
    echo "==> no bench records captured; $json not written" >&2
    exit 1
fi

# Regression gate: the posit-quire GEMM rows, the serve rows built on
# them, and the plane_decode rows (the decode LUT fast paths feeding every
# kernel) must not regress more than 1.5x against the previous
# run's JSON. The telemetry-overhead rows (mlp.obs-off/posit-quire and
# mlp.obs-on/posit-quire from benches/backends.rs) match the same
# pattern, so both the disabled cost of posit-obs (one relaxed atomic
# load per kernel call) and its enabled cost are held inside the gate. The baseline is always same-machine: BENCH_*.json is
# gitignored, so the file at the repo root is whatever the *last run on
# this box* wrote (a fresh clone has no baseline and skips the gate) —
# absolute wall times are never compared across machines. Other rows are
# informational — micro-bench noise is real even with the shim's
# quick-mode warm-up — but a >1.5x slide on a millisecond-scale GEMM on
# the same box is a code change, not noise.
if [ -s "$old_json" ]; then
    echo "==> quire-GEMM regression gate (limit 1.5x vs committed JSON)"
    awk '
        # "  "lenet.fc1/posit-quire": 1234," -> key | value
        match($0, /"((lenet|mlp|serve)\.[^"]*\/posit-quire|plane_decode\/[^"]*)"/) {
            key = substr($0, RSTART + 1, RLENGTH - 2)
            val = $0
            sub(/^[^:]*: */, "", val)
            sub(/,?[[:space:]]*$/, "", val)
            if (FNR == NR) { old[key] = val + 0 }
            else { new[key] = val + 0 }
        }
        END {
            status = 0
            for (key in old) {
                if (!(key in new)) {
                    printf "    MISSING  %-28s (was %.0f ns/iter)\n", key, old[key]
                    status = 1
                    continue
                }
                ratio = old[key] > 0 ? new[key] / old[key] : 0
                verdict = ratio > 1.5 ? "REGRESSED" : "ok"
                printf "    %-9s %-28s %12.0f -> %12.0f ns/iter (%.2fx)\n", \
                    verdict, key, old[key], new[key], ratio
                if (ratio > 1.5) status = 1
            }
            if (status) {
                print "==> FAIL: posit-quire GEMM regressed >1.5x vs committed BENCH json" \
                    > "/dev/stderr"
            }
            exit status
        }
    ' "$old_json" "$json"
else
    echo "==> no committed BENCH json to gate against (first run)"
fi
