#!/usr/bin/env sh
# CI stage: bench smoke. Runs every criterion bench target once under the
# shim's quick mode (CRITERION_QUICK=1 → one iteration per benchmark), so
# regressions that only break `benches/` are caught before merge without
# paying real measurement time.
set -eu
cd "$(dirname "$0")/.."

echo "==> CRITERION_QUICK=1 cargo bench -p posit-bench"
CRITERION_QUICK=1 cargo bench -p posit-bench
