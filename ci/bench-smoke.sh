#!/usr/bin/env sh
# CI stage: bench smoke. Runs every criterion bench target once under the
# shim's quick mode (CRITERION_QUICK=1 → one iteration per benchmark), so
# regressions that only break `benches/` are caught before merge without
# paying real measurement time.
#
# Every run also emits a machine-readable BENCH_<stage>.json at the repo
# root (bench name → ns/iter), assembled from the shim's CRITERION_JSON
# NDJSON stream, so the perf trajectory of a branch can be tracked by
# diffing two JSON files instead of scraping bench stdout.
set -eu
cd "$(dirname "$0")/.."

# Absolute paths: cargo runs each bench binary from its package directory,
# so a relative CRITERION_JSON would scatter files across the workspace.
root="$(pwd)"
stage=bench-smoke
ndjson="$root/target/criterion-${stage}.ndjson"
json="$root/BENCH_${stage}.json"
mkdir -p "$root/target"
rm -f "$ndjson"

echo "==> CRITERION_QUICK=1 cargo bench -p posit-bench"
CRITERION_QUICK=1 CRITERION_JSON="$ndjson" cargo bench -p posit-bench

# Assemble {"bench": ns, …} from the one-object-per-line NDJSON stream.
if [ -s "$ndjson" ]; then
    awk '
        {
            line = $0
            sub(/^\{"bench":/, "", line)
            sub(/,"ns_per_iter":/, ": ", line)
            sub(/\}$/, "", line)
            lines[NR] = line
        }
        END {
            print "{"
            for (i = 1; i <= NR; i++)
                printf "  %s%s\n", lines[i], (i < NR ? "," : "")
            print "}"
        }
    ' "$ndjson" > "$json"
    echo "==> wrote ${json#"$root"/} ($(wc -l < "$ndjson") benchmarks)"
else
    echo "==> no bench records captured; $json not written" >&2
    exit 1
fi
