#!/usr/bin/env sh
# CI stage: lints. Clippy runs with -D warnings across every target (no
# lint baseline — the tree is clippy-clean, keep it that way), and the
# examples must at least type-check.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo check --examples"
cargo check --examples
