#!/usr/bin/env sh
# CI stage: formatting. Fails if any file deviates from rustfmt defaults.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check
