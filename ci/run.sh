#!/usr/bin/env sh
# Staged CI runner for the posit-dnn workspace.
#
#   ci/run.sh [--quick]
#
# Runs every stage (fmt, lint, test, chaos-smoke, bench-smoke, doc) even
# when an earlier one fails, timing each, then prints a summary table and
# exits non-zero if any stage failed. `--quick` is forwarded to the test
# stage (skips the release build).
set -u
cd "$(dirname "$0")/.."

quick=""
for arg in "$@"; do
    [ "$arg" = "--quick" ] && quick="--quick"
done

stages="fmt lint test chaos-smoke bench-smoke doc"
results=""
failed=0

for stage in $stages; do
    echo ""
    echo "===== stage: $stage ====="
    start=$(date +%s)
    if [ "$stage" = "test" ]; then
        sh "ci/$stage.sh" $quick
    else
        sh "ci/$stage.sh"
    fi
    code=$?
    end=$(date +%s)
    dur=$((end - start))
    if [ "$code" -eq 0 ]; then
        status="ok"
    else
        status="FAIL"
        failed=1
    fi
    results="$results$stage $status ${dur}s\n"
    echo "===== stage: $stage -> $status (${dur}s) ====="
done

echo ""
echo "===== CI summary ====="
printf "%-14s %-6s %s\n" "stage" "status" "time"
printf "$results" | while read -r name status dur; do
    [ -n "$name" ] && printf "%-14s %-6s %s\n" "$name" "$status" "$dur"
done
echo "======================"

if [ "$failed" -ne 0 ]; then
    echo "CI: FAILED"
    exit 1
fi
echo "CI: OK"
